//! Process-wide metrics registry: named counters, gauges, and
//! histograms with lock-free per-worker shards merged exactly at
//! scrape time.
//!
//! The update path is wait-free after handle creation: a [`Counter`] /
//! [`Gauge`] / [`Hist`] handle wraps an `Arc` of atomics, and every
//! `add`/`set`/`record` is a relaxed atomic op — no locks, no
//! cross-worker cache-line contention when each worker records through
//! its own [`Shard`]. Handle *creation* takes the owning shard's map
//! lock once; hot loops hold handles.
//!
//! Scraping ([`Registry::snapshot`]) walks every registered shard and
//! merges: counters by sum, gauges last-registered-shard-wins (so a
//! later batch's shard supersedes an earlier one for the same id), and
//! histograms through [`LatencyHist::absorb_parts`] — the same bucket
//! contract as the simulator's observer-layer histograms, so fleet
//! queue-wait percentiles come from the same machinery as the epoch
//! sampler's latency accounting. A histogram snapshot derives its
//! count from the bucket totals, so "bucket counts sum to the total"
//! holds even for a scrape racing concurrent `record` calls.
//!
//! Metric identity is the canonical string `name` or
//! `name{k1="v1",k2="v2"}` with label keys sorted — snapshots are
//! `BTreeMap`s, so every exposition is deterministically ordered.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use grp_core::LatencyHist;

/// Renders the canonical metric id: `name` bare, or
/// `name{k1="v1",…}` with label keys sorted so the same labels in any
/// order produce the same id. Label values escape `\` and `"`.
pub fn metric_id(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{name}{{{}}}", body.join(","))
}

/// The family (metric name) of a canonical id: everything before the
/// first `{`.
pub fn family(id: &str) -> &str {
    id.split('{').next().unwrap_or(id)
}

/// A monotonically increasing counter handle (clone-cheap).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `v` (relaxed atomic; wait-free).
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (for tests; scrapes go through the registry).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle storing an `f64` (as bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge (relaxed atomic store of the value's bits).
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Lock-free histogram cell: 32 power-of-two buckets under the
/// [`LatencyHist::bucket_index`] contract plus advisory sum/max.
#[derive(Debug, Default)]
pub struct AtomicHist {
    buckets: [AtomicU64; 32],
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    /// Merges this cell's current contents into `h` (scrape-time).
    fn merge_into(&self, h: &mut LatencyHist) {
        let mut buckets = [0u64; 32];
        for (b, a) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        h.absorb_parts(
            &buckets,
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        );
    }
}

/// A histogram handle (clone-cheap).
#[derive(Debug, Clone)]
pub struct Hist(Arc<AtomicHist>);

impl Hist {
    /// Records one sample (three relaxed atomic ops; wait-free).
    pub fn record(&self, v: u64) {
        self.0.buckets[LatencyHist::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }
}

/// One worker's private slice of the registry. Updates through handles
/// from this shard never contend with other workers; the shard's maps
/// are only locked to create or enumerate handles.
#[derive(Debug, Default)]
pub struct Shard {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<HashMap<String, Arc<AtomicU64>>>,
    hists: Mutex<HashMap<String, Arc<AtomicHist>>>,
}

impl Shard {
    /// The counter handle for `name` + `labels` in this shard,
    /// creating the cell on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = metric_id(name, labels);
        Counter(self.counters.lock().expect("counter map").entry(id).or_default().clone())
    }

    /// The counter handle for an already-canonical id (as produced by
    /// [`metric_id`] and carried in snapshots/expositions). Restart
    /// carryover uses this to re-seed counters from a previous scrape
    /// without re-deriving name/label pairs.
    pub fn counter_id(&self, id: &str) -> Counter {
        Counter(
            self.counters
                .lock()
                .expect("counter map")
                .entry(id.to_string())
                .or_default()
                .clone(),
        )
    }

    /// The gauge handle for `name` + `labels` in this shard.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = metric_id(name, labels);
        Gauge(self.gauges.lock().expect("gauge map").entry(id).or_default().clone())
    }

    /// The histogram handle for `name` + `labels` in this shard.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Hist {
        let id = metric_id(name, labels);
        Hist(self.hists.lock().expect("hist map").entry(id).or_default().clone())
    }
}

/// The registry: a list of shards, merged exactly at scrape time.
///
/// Cheap to create (tests use a fresh one per case); long-lived code
/// shares one through [`crate::telemetry::registry`].
#[derive(Default)]
pub struct Registry {
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} shards)", self.shards.lock().map(|s| s.len()).unwrap_or(0))
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers and returns a new shard. One per worker thread (or
    /// per subsystem for low-rate paths); registration order is the
    /// gauge merge order (later shards win).
    pub fn shard(&self) -> Arc<Shard> {
        let s = Arc::new(Shard::default());
        self.shards.lock().expect("shard list").push(s.clone());
        s
    }

    /// Merges every shard into one deterministic [`Snapshot`]. Safe to
    /// call while workers are updating: counters and histogram buckets
    /// are monotone, and a histogram's count is derived from its
    /// buckets, so a concurrent scrape sees a consistent (if slightly
    /// stale) view — never a torn one.
    pub fn snapshot(&self) -> Snapshot {
        let shards: Vec<Arc<Shard>> = self.shards.lock().expect("shard list").clone();
        let mut snap = Snapshot::default();
        for shard in &shards {
            for (id, cell) in shard.counters.lock().expect("counter map").iter() {
                *snap.counters.entry(id.clone()).or_insert(0) += cell.load(Ordering::Relaxed);
            }
            // Later-registered shards overwrite earlier ones: last
            // write wins for gauges across shard generations.
            for (id, cell) in shard.gauges.lock().expect("gauge map").iter() {
                snap.gauges
                    .insert(id.clone(), f64::from_bits(cell.load(Ordering::Relaxed)));
            }
            for (id, cell) in shard.hists.lock().expect("hist map").iter() {
                cell.merge_into(snap.hists.entry(id.clone()).or_default());
            }
        }
        snap
    }
}

/// A merged, deterministically ordered view of the registry at one
/// scrape.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter id → merged (summed) value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge id → merged (last-shard-wins) value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram id → merged distribution.
    pub hists: BTreeMap<String, LatencyHist>,
}

impl Snapshot {
    /// The counter value for a canonical id (0 when absent).
    pub fn counter(&self, id: &str) -> u64 {
        self.counters.get(id).copied().unwrap_or(0)
    }

    /// Sum of every counter in `name`'s family across all label sets.
    pub fn family_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| family(id) == name)
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_canonical_and_label_order_free() {
        assert_eq!(metric_id("x_total", &[]), "x_total");
        assert_eq!(
            metric_id("x_total", &[("b", "2"), ("a", "1")]),
            "x_total{a=\"1\",b=\"2\"}"
        );
        assert_eq!(
            metric_id("x_total", &[("a", "1"), ("b", "2")]),
            metric_id("x_total", &[("b", "2"), ("a", "1")])
        );
        assert_eq!(metric_id("q", &[("k", "say \"hi\"")]), "q{k=\"say \\\"hi\\\"\"}");
        assert_eq!(family("x_total{a=\"1\"}"), "x_total");
        assert_eq!(family("x_total"), "x_total");
    }

    #[test]
    fn counters_merge_by_sum_across_shards() {
        let reg = Registry::new();
        let a = reg.shard();
        let b = reg.shard();
        a.counter("jobs_total", &[("k", "gzip")]).add(3);
        b.counter("jobs_total", &[("k", "gzip")]).add(4);
        b.counter("jobs_total", &[("k", "mcf")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("jobs_total{k=\"gzip\"}"), 7);
        assert_eq!(snap.counter("jobs_total{k=\"mcf\"}"), 1);
        assert_eq!(snap.family_total("jobs_total"), 8);
        assert_eq!(snap.counter("absent_total"), 0);
    }

    #[test]
    fn gauges_merge_last_registered_shard_wins() {
        let reg = Registry::new();
        let first = reg.shard();
        first.gauge("workers", &[]).set(2.0);
        let later = reg.shard();
        later.gauge("workers", &[]).set(8.0);
        assert_eq!(reg.snapshot().gauges["workers"], 8.0);
        // A shard that never wrote the gauge does not mask it.
        let _silent = reg.shard();
        assert_eq!(reg.snapshot().gauges["workers"], 8.0);
    }

    #[test]
    fn hists_merge_through_absorb_parts() {
        let reg = Registry::new();
        let a = reg.shard();
        let b = reg.shard();
        let ha = a.hist("wait_micros", &[]);
        let hb = b.hist("wait_micros", &[]);
        for v in [0, 5, 100] {
            ha.record(v);
        }
        hb.record(1 << 20);
        let snap = reg.snapshot();
        let h = &snap.hists["wait_micros"];
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 105 + (1 << 20));
        assert_eq!(h.max(), 1 << 20);
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
        // Serial reference: same samples through one LatencyHist.
        let mut want = LatencyHist::default();
        for v in [0u64, 5, 100, 1 << 20] {
            want.record(v);
        }
        assert_eq!(h.buckets(), want.buckets());
        assert_eq!(h.percentile(0.5), want.percentile(0.5));
    }

    #[test]
    fn handles_are_shared_within_a_shard() {
        let reg = Registry::new();
        let s = reg.shard();
        let c1 = s.counter("n_total", &[]);
        let c2 = s.counter("n_total", &[]);
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2, "same cell behind both handles");
        let g = s.gauge("v", &[]);
        g.set(1.5);
        assert_eq!(s.gauge("v", &[]).get(), 1.5);
    }
}

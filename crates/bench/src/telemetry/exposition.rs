//! Prometheus-style text exposition and a JSON twin for registry
//! snapshots, plus the re-parsing validator behind `check --metrics`.
//!
//! The text form is deterministic and timestamp-free: families sorted
//! (counters, then gauges, then histograms), ids sorted within a
//! family, histogram buckets cumulative with power-of-two `le` upper
//! bounds and a `+Inf` bucket equal to `_count`. The JSON twin carries
//! the scrape wall-clock in exactly one clearly-marked field
//! (`scraped_at_unix_micros`) so artifact diffs isolate
//! nondeterminism to that field alone.

use std::collections::BTreeMap;

use grp_core::LatencyHist;

use super::registry::{family, Snapshot};
use crate::json::Json;

/// Splits a canonical id into `(name, label_body)` where `label_body`
/// is the `k="v",…` interior (empty when unlabelled).
fn split_id(id: &str) -> (&str, &str) {
    match id.find('{') {
        Some(i) => (&id[..i], &id[i + 1..id.len() - 1]),
        None => (id, ""),
    }
}

/// Joins a label body with one extra `le` label for histogram buckets.
fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{{{labels},le=\"{le}\"}}")
    }
}

/// Renders the deterministic Prometheus-style text exposition.
pub fn render_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for (id, v) in &snap.counters {
        let fam = family(id);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} counter\n"));
            last_family = fam;
        }
        out.push_str(&format!("{id} {v}\n"));
    }
    last_family = "";
    for (id, v) in &snap.gauges {
        let fam = family(id);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} gauge\n"));
            last_family = fam;
        }
        out.push_str(&format!("{id} {v}\n"));
    }
    last_family = "";
    for (id, h) in &snap.hists {
        let (name, labels) = split_id(id);
        if name != last_family {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            last_family = name;
        }
        let mut cum = 0u64;
        for (i, &c) in h.buckets().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let (_, hi) = LatencyHist::bucket_range(i);
            out.push_str(&format!("{name}_bucket{} {cum}\n", with_le(labels, &hi.to_string())));
        }
        out.push_str(&format!("{name}_bucket{} {}\n", with_le(labels, "+Inf"), h.count()));
        let suffix = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        out.push_str(&format!("{name}_sum{suffix} {}\n", h.sum()));
        out.push_str(&format!("{name}_count{suffix} {}\n", h.count()));
    }
    out
}

/// The JSON twin of one snapshot. `scraped_at_unix_micros` (when
/// given) is the **only** wall-clock field — everything else is a pure
/// function of the recorded samples.
pub fn snapshot_json(snap: &Snapshot, scraped_at_unix_micros: Option<u64>) -> Json {
    let mut counters = Json::object();
    for (id, v) in &snap.counters {
        counters = counters.set(id.as_str(), *v);
    }
    let mut gauges = Json::object();
    for (id, v) in &snap.gauges {
        gauges = gauges.set(id.as_str(), *v);
    }
    let mut hists = Json::object();
    for (id, h) in &snap.hists {
        let mut buckets = Vec::new();
        for (i, &c) in h.buckets().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = LatencyHist::bucket_range(i);
            buckets.push(Json::object().set("lo", lo).set("hi", hi).set("count", c));
        }
        hists = hists.set(
            id.as_str(),
            Json::object()
                .set("count", h.count())
                .set("sum", h.sum())
                .set("max", h.max())
                .set("mean", h.mean())
                .set("p50", h.percentile(0.50))
                .set("p99", h.percentile(0.99))
                .set("buckets", Json::Array(buckets)),
        );
    }
    let mut doc = Json::object();
    if let Some(ts) = scraped_at_unix_micros {
        doc = doc.set("scraped_at_unix_micros", ts);
    }
    doc.set("counters", counters).set("gauges", gauges).set("histograms", hists)
}

/// Scrapes `registry` and writes the deterministic text exposition to
/// `path` plus the JSON twin (whose `scraped_at_unix_micros` field is
/// the only wall-clock value) to `<path>.json`, both through the
/// atomic staging layer — the one export shape shared by `serve
/// --metrics-out` and `all --registry-out`.
///
/// # Errors
///
/// Any staged-write I/O error; export is best-effort for most
/// callers, which warn and continue.
pub fn write_registry(registry: &super::registry::Registry, path: &str) -> std::io::Result<()> {
    let snap = registry.snapshot();
    crate::artifact::atomic_write(path, render_text(&snap))?;
    let scraped_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let doc = snapshot_json(&snap, Some(scraped_at));
    crate::artifact::atomic_write(format!("{path}.json"), doc.render())
}

/// A re-parsed exposition: what the validator extracts from the text.
#[derive(Debug, Clone, Default)]
pub struct ParsedExposition {
    /// Family → declared type (`counter` / `gauge` / `histogram`).
    pub types: BTreeMap<String, String>,
    /// Counter sample id → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram series id (`name{labels}` without `_count`) → count.
    pub hist_counts: BTreeMap<String, u64>,
}

/// Re-parses and validates a text exposition: every sample belongs to
/// a declared family, no family is declared twice or with an unknown
/// type, and every histogram series has cumulative nondecreasing
/// buckets whose `+Inf` bucket equals its `_count` sample (i.e. the
/// bucket counts sum to the total), plus a `_sum`.
///
/// # Errors
///
/// A message naming the offending line or series.
pub fn validate_text(text: &str) -> Result<ParsedExposition, String> {
    let mut parsed = ParsedExposition::default();
    // series id -> (le label -> cumulative value), sum/count presence.
    let mut buckets: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    let mut inf_buckets: BTreeMap<String, u64> = BTreeMap::new();
    let mut sums: BTreeMap<String, bool> = BTreeMap::new();
    for (no, line) in text.lines().enumerate() {
        let lineno = no + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let fam = parts.next().ok_or(format!("line {lineno}: TYPE without a family"))?;
            let ty = parts.next().ok_or(format!("line {lineno}: TYPE without a type"))?;
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown TYPE '{ty}' for {fam}"));
            }
            if parsed.types.insert(fam.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {lineno}: family {fam} declared twice"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: `<id> <value>`; the id may contain spaces only
        // inside quoted label values, which our writers never emit —
        // split at the last space.
        let (id, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: sample without a value"))?;
        let (name, labels) = split_id(id);
        // Histogram component samples resolve to their base family.
        let (base, comp) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s).map(|b| (b, *s)))
            .filter(|(b, _)| parsed.types.get(*b).map(String::as_str) == Some("histogram"))
            .unwrap_or((name, ""));
        let ty = parsed
            .types
            .get(base)
            .ok_or(format!("line {lineno}: sample for undeclared family '{base}'"))?;
        let num: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse()
                .map_err(|_| format!("line {lineno}: unparsable value '{value}'"))?
        };
        if !num.is_finite() || num < 0.0 {
            return Err(format!("line {lineno}: non-finite or negative value '{value}'"));
        }
        match (ty.as_str(), comp) {
            ("counter", "") => {
                parsed.counters.insert(id.to_string(), num as u64);
            }
            ("gauge", "") => {}
            ("histogram", "_bucket") => {
                let mut le = None;
                let mut rest = Vec::new();
                for part in labels.split(',').filter(|p| !p.is_empty()) {
                    match part.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
                        Some(v) => le = Some(v.to_string()),
                        None => rest.push(part),
                    }
                }
                let le = le.ok_or(format!("line {lineno}: bucket without an le label"))?;
                let series = if rest.is_empty() {
                    base.to_string()
                } else {
                    format!("{base}{{{}}}", rest.join(","))
                };
                if le == "+Inf" {
                    inf_buckets.insert(series, num as u64);
                } else {
                    let bound: f64 = le
                        .parse()
                        .map_err(|_| format!("line {lineno}: unparsable le '{le}'"))?;
                    buckets.entry(series).or_default().push((bound, num as u64));
                }
            }
            ("histogram", "_sum") => {
                sums.insert(id.replace("_sum", ""), true);
            }
            ("histogram", "_count") => {
                let series = id.replace("_count", "");
                parsed.hist_counts.insert(series, num as u64);
            }
            (ty, "") => {
                return Err(format!("line {lineno}: bare sample for {ty} family '{base}'"));
            }
            (ty, comp) => {
                return Err(format!("line {lineno}: {comp} sample for {ty} family '{base}'"));
            }
        }
    }
    // Per-series histogram invariants.
    for (series, count) in &parsed.hist_counts {
        let inf = inf_buckets
            .remove(series)
            .ok_or(format!("histogram {series}: no +Inf bucket"))?;
        if inf != *count {
            return Err(format!(
                "histogram {series}: +Inf bucket {inf} != count {count} \
                 (bucket counts must sum to the total)"
            ));
        }
        if let Some(bs) = buckets.get(series) {
            let mut prev = 0u64;
            let mut prev_bound = f64::NEG_INFINITY;
            for (bound, cum) in bs {
                if *bound <= prev_bound {
                    return Err(format!("histogram {series}: le bounds not increasing"));
                }
                if *cum < prev {
                    return Err(format!("histogram {series}: cumulative buckets decreased"));
                }
                prev = *cum;
                prev_bound = *bound;
            }
            if prev > *count {
                return Err(format!(
                    "histogram {series}: cumulative bucket {prev} exceeds count {count}"
                ));
            }
        }
        if !sums.contains_key(series) {
            return Err(format!("histogram {series}: no _sum sample"));
        }
    }
    if let Some(series) = inf_buckets.keys().next() {
        return Err(format!("histogram {series}: +Inf bucket without a _count"));
    }
    Ok(parsed)
}

/// Asserts cumulative series are monotone between two scrapes: every
/// counter and histogram count in `prev` must exist in `cur` with a
/// value at least as large.
///
/// # Errors
///
/// Names the first regressing or vanished series.
pub fn check_monotone(prev: &ParsedExposition, cur: &ParsedExposition) -> Result<(), String> {
    for (id, was) in &prev.counters {
        match cur.counters.get(id) {
            None => return Err(format!("counter {id} vanished between scrapes")),
            Some(now) if now < was => {
                return Err(format!("counter {id} regressed: {was} -> {now}"));
            }
            Some(_) => {}
        }
    }
    for (id, was) in &prev.hist_counts {
        match cur.hist_counts.get(id) {
            None => return Err(format!("histogram {id} vanished between scrapes")),
            Some(now) if now < was => {
                return Err(format!("histogram {id} count regressed: {was} -> {now}"));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        let s = reg.shard();
        s.counter("grp_jobs_total", &[("bench", "gzip"), ("scheme", "SRP")]).add(3);
        s.counter("grp_jobs_total", &[("bench", "mcf"), ("scheme", "none")]).add(1);
        s.counter("grp_errors_total", &[]).add(0);
        s.gauge("grp_workers", &[]).set(4.0);
        let h = s.hist("grp_wait_micros", &[]);
        for v in [0, 3, 3, 900] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn text_round_trips_through_the_validator() {
        let snap = sample_snapshot();
        let text = render_text(&snap);
        assert!(text.contains("# TYPE grp_jobs_total counter"), "{text}");
        assert!(text.contains("grp_jobs_total{bench=\"gzip\",scheme=\"SRP\"} 3"), "{text}");
        assert!(text.contains("# TYPE grp_wait_micros histogram"), "{text}");
        assert!(text.contains("grp_wait_micros_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("grp_wait_micros_count 4"), "{text}");
        // Deterministic: same snapshot renders byte-identically.
        assert_eq!(text, render_text(&snap));
        let parsed = validate_text(&text).expect("valid exposition");
        assert_eq!(parsed.counters["grp_jobs_total{bench=\"gzip\",scheme=\"SRP\"}"], 3);
        assert_eq!(parsed.hist_counts["grp_wait_micros"], 4);
        assert_eq!(parsed.types["grp_workers"], "gauge");
    }

    #[test]
    fn labelled_histograms_validate_too() {
        let reg = Registry::new();
        let s = reg.shard();
        s.hist("h_micros", &[("w", "0")]).record(5);
        s.hist("h_micros", &[("w", "1")]).record(9);
        let text = render_text(&reg.snapshot());
        assert!(text.contains("h_micros_bucket{w=\"0\",le=\"7\"} 1"), "{text}");
        let parsed = validate_text(&text).expect("valid");
        assert_eq!(parsed.hist_counts["h_micros{w=\"0\"}"], 1);
        assert_eq!(parsed.hist_counts["h_micros{w=\"1\"}"], 1);
    }

    #[test]
    fn validator_rejects_broken_expositions() {
        let e = validate_text("orphan_total 3\n").unwrap_err();
        assert!(e.contains("undeclared"), "{e}");
        let e = validate_text("# TYPE x counter\nx notanumber\n").unwrap_err();
        assert!(e.contains("unparsable"), "{e}");
        let e = validate_text("# TYPE x counter\n# TYPE x counter\n").unwrap_err();
        assert!(e.contains("twice"), "{e}");
        // +Inf bucket must equal _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n\
                   h_sum 9\nh_count 3\n";
        let e = validate_text(bad).unwrap_err();
        assert!(e.contains("bucket counts must sum to the total"), "{e}");
        // Cumulative buckets must not decrease.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"3\"} 1\n\
                   h_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 2\n";
        let e = validate_text(bad).unwrap_err();
        assert!(e.contains("decreased"), "{e}");
        // Histogram without a _sum.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n";
        let e = validate_text(bad).unwrap_err();
        assert!(e.contains("_sum"), "{e}");
    }

    #[test]
    fn monotone_check_catches_regressions() {
        let a = validate_text("# TYPE c counter\nc 3\n").unwrap();
        let b = validate_text("# TYPE c counter\nc 5\n").unwrap();
        assert!(check_monotone(&a, &b).is_ok());
        let e = check_monotone(&b, &a).unwrap_err();
        assert!(e.contains("regressed"), "{e}");
        let empty = validate_text("").unwrap();
        let e = check_monotone(&a, &empty).unwrap_err();
        assert!(e.contains("vanished"), "{e}");
    }

    #[test]
    fn json_twin_isolates_the_timestamp() {
        let snap = sample_snapshot();
        let with_ts = snapshot_json(&snap, Some(123)).render();
        let without = snapshot_json(&snap, None).render();
        assert!(with_ts.contains("\"scraped_at_unix_micros\":123"), "{with_ts}");
        assert!(!without.contains("scraped_at"), "{without}");
        // Everything else is identical — the timestamp is the only
        // nondeterministic field.
        assert_eq!(with_ts.replace("\"scraped_at_unix_micros\":123,", ""), without);
    }
}

//! Leveled structured NDJSON logger for the bench harness.
//!
//! One JSON object per stderr line:
//! `{"ts_micros":…,"lvl":"info","target":"serve","msg":"…",…fields}`.
//! `ts_micros` (wall-clock unix microseconds) appears **only** here —
//! log lines go to stderr, never into artifacts, so artifact
//! determinism is untouched (see the timestamp policy in DESIGN.md
//! §14).
//!
//! The level is process-global: `GRP_LOG`
//! (`error|warn|info|debug|trace`) sets the default, a bin's
//! `--log-level` flag ([`init_from_args`]) overrides it, and the
//! default is `info`. Filtering happens before any formatting, so a
//! suppressed `debug!`-style call costs one atomic load.
//!
//! Each line is written with a single locked `write_all` — concurrent
//! workers interleave whole lines, never fragments. The writer goes
//! through `std::io::stderr` directly: `eprintln!` is lint-banned in
//! this crate (verify.sh greps for it) so every diagnostic carries a
//! level and structure.

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::json::Json;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed (usually followed by a nonzero exit).
    Error = 0,
    /// Degraded but continuing (e.g. a best-effort cache store failed).
    Warn = 1,
    /// Normal operational landmarks (batch summaries, listeners).
    Info = 2,
    /// Per-request / per-cell detail (cache miss reasons, retries).
    Debug = 3,
    /// Everything (per-line request parsing).
    Trace = 4,
}

impl Level {
    /// Parses `error|warn|info|debug|trace`.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The lowercase label (`"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// 255 = "not yet initialized from GRP_LOG".
static LEVEL: AtomicU8 = AtomicU8::new(255);
/// Monotonic id source for sessions / batches / requests / spans.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The active level, reading `GRP_LOG` on first use (default `info`).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        255 => {
            let from_env = std::env::var("GRP_LOG")
                .ok()
                .and_then(|v| Level::parse(&v))
                .unwrap_or(Level::Info);
            // A concurrent set_level wins: only replace the sentinel.
            let _ = LEVEL.compare_exchange(
                255,
                from_env as u8,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            from_env
        }
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Sets the process-global level (overrides `GRP_LOG`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when a message at `l` would be emitted.
pub fn enabled(l: Level) -> bool {
    l <= level()
}

/// Applies a bin's `--log-level <error|warn|info|debug|trace>` flag
/// (overrides `GRP_LOG`; absent flag leaves the env/default level).
///
/// # Errors
///
/// Names the invalid level or a malformed flag shape.
pub fn init_from_args(args: &[String]) -> Result<(), String> {
    if let Some(v) =
        crate::args::strict_value(args, "--log-level", "error, warn, info, debug, trace")?
    {
        let l = Level::parse(&v).ok_or_else(|| {
            format!("unknown log level '{v}' (valid: error, warn, info, debug, trace)")
        })?;
        set_level(l);
    }
    Ok(())
}

/// A fresh process-unique id (request / session / span correlation).
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Wall-clock unix microseconds (log lines only — never artifacts).
fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Emits one structured line at `l` with extra fields.
pub fn log_kv(l: Level, target: &str, msg: &str, fields: &[(&str, Json)]) {
    if !enabled(l) {
        return;
    }
    let mut doc = Json::object()
        .set("ts_micros", now_micros())
        .set("lvl", l.label())
        .set("target", target)
        .set("msg", msg);
    for (k, v) in fields {
        doc = doc.set(k, v.clone());
    }
    let mut line = doc.render();
    line.push('\n');
    // One locked write per line: whole lines interleave, never bytes.
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(line.as_bytes());
}

/// Emits one structured line at `l` with no extra fields.
pub fn log(l: Level, target: &str, msg: &str) {
    log_kv(l, target, msg, &[]);
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str) {
    log(Level::Error, target, msg);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str) {
    log(Level::Warn, target, msg);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str) {
    log(Level::Info, target, msg);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str) {
    log(Level::Debug, target, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_order_and_label() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::Warn.label(), "warn");
    }

    #[test]
    fn init_from_args_sets_and_rejects() {
        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|a| a.to_string()).collect() };
        // Level state is process-global; keep every assertion in one
        // test so parallel test threads cannot interleave set_level.
        init_from_args(&argv(&["serve", "--log-level", "debug"])).expect("valid");
        assert_eq!(level(), Level::Debug);
        assert!(enabled(Level::Debug));
        let e = init_from_args(&argv(&["serve", "--log-level", "loud"])).unwrap_err();
        assert!(e.contains("loud"), "{e}");
        assert!(e.contains("error, warn, info, debug, trace"), "{e}");
        let e = init_from_args(&argv(&["serve", "--log-level"])).unwrap_err();
        assert!(e.contains("requires a value"), "{e}");
        set_level(Level::Error);
        assert!(!enabled(Level::Info));
        // Suppressed emission is a no-op (must not panic or write).
        log(Level::Info, "test", "suppressed");
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Trace));
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let a = next_id();
        let b = next_id();
        assert!(b > a);
    }
}

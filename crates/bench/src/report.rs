//! Plain-text table rendering in the paper's layouts.

/// A simple fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<w$}", c, w = widths[i])
                    } else {
                        format!("{:>w$}", c, w = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio like `1.23`.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage like `45.6`.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// A horizontal-bar rendering for figure-style output (one bar per
/// label, scaled to `width` characters at `max`).
pub fn bar_chart(rows: &[(String, f64)], max: f64, width: usize) -> String {
    let mut out = String::new();
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in rows {
        let n = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{:<label_w$}  {:>6.3} |{}\n",
            label,
            v,
            "#".repeat(n.min(width))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["bench", "speedup"]);
        t.row(vec!["swim", "1.20"]);
        t.row(vec!["mcf", "1.02"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[2].starts_with("swim"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("1.20"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.456), "45.6");
    }

    #[test]
    fn bars_scale_to_width() {
        let rows = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let s = bar_chart(&rows, 2.0, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("#####"));
        assert!(lines[1].contains("##########"));
    }
}

//! Strict command-line flag parsing shared by the bench binaries.
//!
//! Every accessor here rejects, with an error naming the valid values,
//! the three argv shapes that ad-hoc `position + get(i + 1)` lookups
//! silently mis-handle:
//!
//! * the flag appearing last (`… --scale`) — the missing value used to
//!   fall back to a default, so a typo'd invocation ran the wrong
//!   configuration without a word;
//! * a duplicated flag (`--scale test --scale paper`) — only one
//!   occurrence was ever read, and which one depended on the lookup;
//! * a value that is itself a flag (`--scale --verbose`) — the next
//!   flag was swallowed as the value.

/// Looks up `--flag <value>`. `Ok(None)` when the flag is absent;
/// an error naming `valid` on a duplicate flag, a missing value, or a
/// `--`-prefixed value.
pub fn strict_value(args: &[String], flag: &str, valid: &str) -> Result<Option<String>, String> {
    let mut found: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if found.is_some() {
                return Err(format!("{flag} given more than once (valid: {valid})"));
            }
            match args.get(i + 1) {
                None => {
                    return Err(format!("{flag} requires a value (valid: {valid})"));
                }
                Some(v) if v.starts_with("--") => {
                    return Err(format!(
                        "{flag} requires a value, got flag '{v}' (valid: {valid})"
                    ));
                }
                Some(v) => {
                    found = Some(v.clone());
                    i += 1;
                }
            }
        }
        i += 1;
    }
    Ok(found)
}

/// Looks up a bare presence flag (no value, e.g. `--faults`). Errors
/// on a duplicated flag so printed reproducer lines stay canonical.
pub fn strict_flag(args: &[String], flag: &str) -> Result<bool, String> {
    match args.iter().filter(|a| *a == flag).count() {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(format!("{flag} given more than once")),
    }
}

/// Parses a `u64` accepting a `0x` prefix (with `_` separators), so
/// printed reproducer lines (`--seed 0x5eed…`) paste back verbatim.
/// Shared by the flag parsers and env-var specs (`GRP_IOFAULT=seed:…`).
pub fn parse_u64(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16).ok(),
        None => v.parse().ok(),
    }
}

/// [`strict_value`] for integer flags; additionally errors when the
/// value does not parse as a `u64` (via [`parse_u64`]).
pub fn strict_u64(args: &[String], flag: &str, valid: &str) -> Result<Option<u64>, String> {
    match strict_value(args, flag, valid)? {
        None => Ok(None),
        Some(v) => parse_u64(&v)
            .map(|n| Some(n))
            .ok_or_else(|| format!("{flag} requires an integer, got '{v}' (valid: {valid})")),
    }
}

/// Parses the worker-count override for parallel precompute: the
/// `--jobs N` flag, falling back to the `GRP_JOBS` environment variable
/// when the flag is absent. `Ok(None)` means "use the default"
/// (available parallelism); `0` and non-numeric values are errors from
/// either source.
pub fn parse_jobs_args(args: &[String]) -> Result<Option<usize>, String> {
    let from_flag = strict_u64(args, "--jobs", "a positive worker count")?;
    let n = match from_flag {
        Some(n) => Some(n),
        None => match std::env::var("GRP_JOBS") {
            Ok(v) => Some(v.parse::<u64>().map_err(|_| {
                format!("GRP_JOBS requires an integer, got '{v}' (valid: a positive worker count)")
            })?),
            Err(_) => None,
        },
    };
    match n {
        Some(0) => Err("--jobs/GRP_JOBS must be at least 1 (valid: a positive worker count)".into()),
        Some(n) => Ok(Some(n as usize)),
        None => Ok(None),
    }
}

/// Parses `--schemes <csv>` (comma-separated [`grp_core::Scheme`]
/// labels, e.g. `none,SRP,GRP/Var`) shared by the perf harness and the
/// serve bin. `Ok(None)` when the flag is absent; an error naming the
/// offending label and every valid label on a typo, an empty list, or
/// a duplicated entry (a duplicate would silently double a grid cell).
pub fn parse_schemes_args(args: &[String]) -> Result<Option<Vec<grp_core::Scheme>>, String> {
    let valid = || {
        grp_core::Scheme::ALL
            .map(|s| s.label())
            .join(", ")
    };
    let Some(csv) = strict_value(args, "--schemes", "a comma-separated scheme list")? else {
        return Ok(None);
    };
    let mut out = Vec::new();
    for part in csv.split(',') {
        let label = part.trim();
        let scheme = grp_core::Scheme::by_label(label)
            .ok_or_else(|| format!("unknown scheme '{label}' (valid: {})", valid()))?;
        if out.contains(&scheme) {
            return Err(format!("--schemes lists '{label}' twice (valid: {})", valid()));
        }
        out.push(scheme);
    }
    if out.is_empty() {
        return Err(format!("--schemes is empty (valid: {})", valid()));
    }
    Ok(Some(out))
}

/// Parses the replay-tier flags shared by the `perf`, `all`, `serve`,
/// and `check` binaries: `--packed` selects the packed
/// struct-of-arrays replay tier, `--trace-cache <dir>` enables the
/// cross-process cache of packed, pre-interpreted traces. Both default
/// off ([`crate::sched::ReplayMode::default`]).
pub fn parse_replay_args(args: &[String]) -> Result<crate::sched::ReplayMode, String> {
    let packed = strict_flag(args, "--packed")?;
    let dir = strict_value(args, "--trace-cache", "a cache directory path")?;
    Ok(crate::sched::ReplayMode {
        packed,
        trace_cache: dir.map(|d| std::sync::Arc::new(crate::tracecache::TraceCache::new(d))),
        telemetry: None,
    })
}

/// Like [`parse_jobs_args`] over the process argv, exiting with the
/// error on stderr (status 2) instead of returning it — the same
/// contract as `scale_from_args`.
pub fn jobs_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    parse_jobs_args(&args).unwrap_or_else(|e| {
        crate::telemetry::log::error("args", &e);
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        assert_eq!(strict_value(&argv(&["run"]), "--x", "v"), Ok(None));
        assert_eq!(strict_u64(&argv(&["run"]), "--x", "v"), Ok(None));
    }

    #[test]
    fn present_flag_parses() {
        let args = argv(&["run", "--epoch", "512", "--label", "a-b"]);
        assert_eq!(
            strict_value(&args, "--label", "any").unwrap().as_deref(),
            Some("a-b")
        );
        assert_eq!(strict_u64(&args, "--epoch", "int").unwrap(), Some(512));
    }

    #[test]
    fn hex_integer_parses() {
        let args = argv(&["run", "--seed", "0x5eedc4ec00000000"]);
        assert_eq!(
            strict_u64(&args, "--seed", "a seed").unwrap(),
            Some(0x5eed_c4ec_0000_0000)
        );
        let err = strict_u64(&argv(&["run", "--seed", "0xzz"]), "--seed", "a seed").unwrap_err();
        assert!(err.contains("0xzz"), "{err}");
    }

    #[test]
    fn flag_at_end_of_argv_errors() {
        let err = strict_value(&argv(&["run", "--scale"]), "--scale", "test, small, paper")
            .unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        assert!(err.contains("test, small, paper"), "error lists valid values: {err}");
    }

    #[test]
    fn duplicated_flag_errors() {
        let args = argv(&["run", "--scale", "test", "--scale", "paper"]);
        let err = strict_value(&args, "--scale", "test, small, paper").unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        assert!(err.contains("test, small, paper"), "{err}");
    }

    #[test]
    fn flag_like_value_errors() {
        let args = argv(&["run", "--scale", "--verbose"]);
        let err = strict_value(&args, "--scale", "test, small, paper").unwrap_err();
        assert!(err.contains("--verbose"), "error names the swallowed flag: {err}");
        assert!(err.contains("test, small, paper"), "{err}");
    }

    #[test]
    fn non_numeric_integer_errors() {
        let args = argv(&["run", "--epoch", "lots"]);
        let err = strict_u64(&args, "--epoch", "an event count").unwrap_err();
        assert!(err.contains("lots"), "{err}");
        assert!(err.contains("an event count"), "{err}");
    }

    #[test]
    fn presence_flag_validation() {
        assert_eq!(strict_flag(&argv(&["run"]), "--faults"), Ok(false));
        assert_eq!(strict_flag(&argv(&["run", "--faults"]), "--faults"), Ok(true));
        let err = strict_flag(&argv(&["run", "--faults", "--faults"]), "--faults").unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn schemes_flag_validation() {
        use grp_core::Scheme;
        assert_eq!(parse_schemes_args(&argv(&["run"])), Ok(None));
        assert_eq!(
            parse_schemes_args(&argv(&["run", "--schemes", "none, SRP,GRP/Var"])),
            Ok(Some(vec![Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar]))
        );
        let err = parse_schemes_args(&argv(&["run", "--schemes", "none,SPR"])).unwrap_err();
        assert!(err.contains("SPR"), "{err}");
        assert!(err.contains("GRP/Var"), "error lists valid labels: {err}");
        let err = parse_schemes_args(&argv(&["run", "--schemes", "SRP,SRP"])).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn replay_flags_validation() {
        let mode = parse_replay_args(&argv(&["run"])).unwrap();
        assert!(mode.is_default());
        let mode = parse_replay_args(&argv(&["run", "--packed"])).unwrap();
        assert!(mode.packed && mode.trace_cache.is_none());
        let mode =
            parse_replay_args(&argv(&["run", "--trace-cache", "/tmp/tc", "--packed"])).unwrap();
        assert!(mode.packed);
        assert_eq!(
            mode.trace_cache.as_deref().map(|c| c.dir().to_path_buf()),
            Some(std::path::PathBuf::from("/tmp/tc"))
        );
        let err = parse_replay_args(&argv(&["run", "--trace-cache"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let err = parse_replay_args(&argv(&["run", "--packed", "--packed"])).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn jobs_flag_validation() {
        assert_eq!(parse_jobs_args(&argv(&["run", "--jobs", "3"])), Ok(Some(3)));
        let err = parse_jobs_args(&argv(&["run", "--jobs", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse_jobs_args(&argv(&["run", "--jobs", "many"])).unwrap_err();
        assert!(err.contains("many"), "{err}");
        let err = parse_jobs_args(&argv(&["run", "--jobs"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }
}

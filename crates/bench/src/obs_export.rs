//! Exporters for the observability layer: Chrome trace-event JSON
//! (Perfetto-loadable) and epoch-metrics JSON documents built from
//! [`LifecycleTracer`] / [`EpochSampler`] output.
//!
//! The Chrome trace uses one *process* per hardware resource:
//!
//! * pid 0 — DRAM channels: one thread per channel, an `"X"` slice per
//!   prefetch from issue to fill.
//! * pid 1 — prefetch queue: candidate residency from enqueue to issue
//!   (or squash), packed into lanes lowest-free-first.
//! * pid 2 — L2 MSHR file: prefetch in-flight occupancy from issue to
//!   fill, lane-packed the same way.
//!
//! Timestamps (`ts`) and durations (`dur`) are core *cycles*, not the
//! microseconds the format nominally specifies — Perfetto renders them
//! fine and the unit is stated in process metadata.

use grp_core::{EpochSnapshot, LatencyHist, LifecycleTracer};

use crate::json::Json;

/// Lowercases a scheme/bench label into a filename-safe slug
/// (`"GRP/Var"` → `"grp-var"`).
pub fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect()
}

/// Looks up `--<flag> <value>` in an argv slice; exits with an error
/// (status 2) on a duplicated flag, a missing value, or a flag-like
/// value — a `--check` at the end of argv used to fall through silently
/// into run mode.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    crate::args::strict_value(args, flag, "a value").unwrap_or_else(|e| {
        crate::telemetry::log::error("args", &e);
        std::process::exit(2);
    })
}

/// Like [`flag_value`] for integer-valued flags; additionally exits
/// with an error on an unparsable value (silent fallback would mask a
/// typo).
pub fn flag_u64(args: &[String], flag: &str) -> Option<u64> {
    crate::args::strict_u64(args, flag, "an integer").unwrap_or_else(|e| {
        crate::telemetry::log::error("args", &e);
        std::process::exit(2);
    })
}

/// Packs half-open intervals into lanes: each `(idx, start, end)` gets
/// the lowest lane free at `start`. Input must be sorted by
/// `(start, idx)` so same-seed runs pack identically.
fn allocate_lanes(intervals: &[(usize, u64, u64)]) -> Vec<(usize, usize)> {
    let mut free_at: Vec<u64> = Vec::new();
    let mut out = Vec::with_capacity(intervals.len());
    for &(idx, start, end) in intervals {
        let lane = match free_at.iter().position(|&f| f <= start) {
            Some(l) => l,
            None => {
                free_at.push(0);
                free_at.len() - 1
            }
        };
        // Zero-length slices still occupy their lane for one cycle so
        // they remain visible (and non-overlapping) in the viewer.
        free_at[lane] = end.max(start + 1);
        out.push((idx, lane));
    }
    out
}

fn meta_event(pid: u64, name: &str) -> Json {
    Json::object()
        .set("name", "process_name")
        .set("ph", "M")
        .set("pid", pid)
        .set("tid", 0u64)
        .set("args", Json::object().set("name", name))
}

fn slice(pid: u64, tid: u64, name: String, ts: u64, dur: u64, args: Json) -> Json {
    Json::object()
        .set("name", name)
        .set("ph", "X")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts)
        .set("dur", dur.max(1))
        .set("args", args)
}

fn counter(pid: u64, name: &str, ts: u64, args: Json) -> Json {
    Json::object()
        .set("name", name)
        .set("ph", "C")
        .set("pid", pid)
        .set("tid", 0u64)
        .set("ts", ts)
        .set("args", args)
}

/// Renders the tracer (and optional epoch series) as a Chrome
/// trace-event document: `{"traceEvents": [...]}`.
pub fn chrome_trace(tracer: &LifecycleTracer, epochs: &[EpochSnapshot]) -> Json {
    let mut events = vec![
        meta_event(0, "DRAM channels (ts in cycles)"),
        meta_event(1, "prefetch queue (ts in cycles)"),
        meta_event(2, "L2 MSHR file (ts in cycles)"),
    ];
    let final_cycle = tracer.final_cycle();

    // pid 0: DRAM service, one thread per channel.
    for r in tracer.records() {
        if let (Some(issued), Some(filled), Some(ch)) = (r.issued_at, r.filled_at, r.channel) {
            let mut args = Json::object().set("block", r.block.0);
            if let Some(h) = r.row_hit {
                args = args.set("row_hit", h);
            }
            if let Some(o) = r.outcome {
                args = args.set("outcome", o.label());
            }
            events.push(slice(
                0,
                ch as u64,
                format!("{:#x}", r.block.0),
                issued,
                filled - issued,
                args,
            ));
        }
    }

    // pid 1: queue residency, lane-packed. A record's queue phase ends
    // at issue, at squash, or (still queued) at the end of the run.
    let mut queue_iv: Vec<(usize, u64, u64)> = Vec::new();
    for (i, r) in tracer.records().iter().enumerate() {
        let start = r.queued_at;
        let end = r.issued_at.or(r.outcome_at).unwrap_or(final_cycle).max(start);
        queue_iv.push((i, start, end));
    }
    queue_iv.sort_by_key(|&(i, s, _)| (s, i));
    let queue_lanes = allocate_lanes(&queue_iv);
    for (&(idx, start, end), &(_, lane)) in queue_iv.iter().zip(&queue_lanes) {
        let r = &tracer.records()[idx];
        let name = r.outcome.map(|o| o.label()).unwrap_or("queued").to_string();
        events.push(slice(
            1,
            lane as u64,
            name,
            start,
            end - start,
            Json::object().set("block", r.block.0),
        ));
    }

    // pid 2: prefetch MSHR occupancy, issue to fill (or end of run).
    let mut mshr_iv: Vec<(usize, u64, u64)> = Vec::new();
    for (i, r) in tracer.records().iter().enumerate() {
        if let Some(issued) = r.issued_at {
            let end = r.filled_at.unwrap_or(final_cycle).max(issued);
            mshr_iv.push((i, issued, end));
        }
    }
    mshr_iv.sort_by_key(|&(i, s, _)| (s, i));
    let mshr_lanes = allocate_lanes(&mshr_iv);
    for (&(idx, start, end), &(_, lane)) in mshr_iv.iter().zip(&mshr_lanes) {
        let r = &tracer.records()[idx];
        events.push(slice(
            2,
            lane as u64,
            format!("{:#x}", r.block.0),
            start,
            end - start,
            Json::object().set("block", r.block.0),
        ));
    }

    // Counters sampled at epoch boundaries.
    for s in epochs {
        events.push(counter(
            0,
            "dram blocks",
            s.cycles,
            Json::object()
                .set("demand", s.demand_blocks)
                .set("prefetch", s.prefetch_blocks)
                .set("writeback", s.writeback_blocks),
        ));
        events.push(counter(0, "ipc", s.cycles, Json::object().set("ipc", s.ipc())));
        events.push(counter(
            1,
            "queue occupancy",
            s.cycles,
            Json::object().set("candidates", s.queue_occupancy as u64),
        ));
        events.push(counter(
            2,
            "l2 mshr occupancy",
            s.cycles,
            Json::object()
                .set("total", s.l2_mshr_occupancy as u64)
                .set("prefetch", s.l2_mshr_prefetches as u64),
        ));
    }

    Json::object().set("traceEvents", Json::Array(events))
}

fn hist_json(h: &LatencyHist) -> Json {
    let mut buckets = Vec::new();
    for (i, &c) in h.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        let (lo, hi) = LatencyHist::bucket_range(i);
        buckets.push(Json::object().set("lo", lo).set("hi", hi).set("n", c));
    }
    Json::object()
        .set("count", h.count())
        .set("sum", h.sum())
        .set("max", h.max())
        .set("mean", h.mean())
        .set("buckets", Json::Array(buckets))
}

/// The lifecycle summary object embedded in metrics documents (and what
/// `--bin trace --check` validates conservation against).
pub fn summary_json(tracer: &LifecycleTracer) -> Json {
    Json::object()
        .set("records", tracer.records().len() as u64)
        .set("issued", tracer.issued())
        .set("first_used", tracer.first_used())
        .set("late", tracer.late())
        .set("evicted_unused", tracer.evicted_unused())
        .set("resident_at_end", tracer.resident_at_end())
        .set("in_flight_at_end", tracer.in_flight_at_end())
        .set("squashed", tracer.squashed())
        .set("queued_at_end", tracer.queued_at_end())
        .set("dropped", tracer.dropped())
        .set("delayed", tracer.delayed())
        .set("faults_seen", tracer.faults_seen())
        .set("demand_misses", tracer.demand_misses())
        .set("accuracy", tracer.accuracy())
        .set("final_cycle", tracer.final_cycle())
}

/// Renders the epoch metrics document: lifecycle summary, the three
/// timeliness histograms, and one row per epoch snapshot.
pub fn metrics_json(tracer: &LifecycleTracer, epochs: &[EpochSnapshot], interval: Option<u64>) -> Json {
    let mut rows = Vec::with_capacity(epochs.len());
    for s in epochs {
        let busy: Vec<Json> = (0..s.channel_busy_cycles.len())
            .map(|ch| Json::Float(s.channel_busy_fraction(ch)))
            .collect();
        rows.push(
            Json::object()
                .set("events", s.events)
                .set("instructions", s.instructions)
                .set("cycles", s.cycles)
                .set("ipc", s.ipc())
                .set("l2_demand_accesses", s.l2_demand_accesses)
                .set("l2_demand_misses", s.l2_demand_misses)
                .set("l2_miss_rate", s.l2_miss_rate())
                .set("useful_prefetches", s.useful_prefetches)
                .set("useless_prefetches", s.useless_prefetches)
                .set("late_prefetch_merges", s.late_prefetch_merges)
                .set("prefetches_issued", s.prefetches_issued)
                .set("running_accuracy", s.running_accuracy())
                .set("running_coverage", s.running_coverage())
                .set("queue_occupancy", s.queue_occupancy as u64)
                .set("l2_mshr_occupancy", s.l2_mshr_occupancy as u64)
                .set("l2_mshr_prefetches", s.l2_mshr_prefetches as u64)
                .set("demand_blocks", s.demand_blocks)
                .set("prefetch_blocks", s.prefetch_blocks)
                .set("writeback_blocks", s.writeback_blocks)
                .set("row_hits", s.row_hits)
                .set("row_misses", s.row_misses)
                .set("channel_busy_fraction", Json::Array(busy)),
        );
    }
    let mut doc = Json::object();
    if let Some(n) = interval {
        doc = doc.set("epoch_interval", n);
    }
    doc.set("summary", summary_json(tracer))
        .set(
            "histograms",
            Json::object()
                .set("queue_residency", hist_json(tracer.queue_residency()))
                .set("issue_to_fill", hist_json(tracer.issue_to_fill()))
                .set("fill_to_use", hist_json(tracer.fill_to_use())),
        )
        .set("epochs", Json::Array(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_core::Observer as _;
    use grp_mem::BlockAddr;

    #[test]
    fn slug_flattens_labels() {
        assert_eq!(slug("GRP/Var"), "grp-var");
        assert_eq!(slug("SRP+ptr"), "srp-ptr");
        assert_eq!(slug("none"), "none");
    }

    #[test]
    fn lanes_never_overlap() {
        let iv = vec![(0, 0, 10), (1, 2, 5), (2, 5, 8), (3, 11, 12)];
        let lanes = allocate_lanes(&iv);
        // Record 1 overlaps 0 → lane 1; record 2 overlaps 0 but lane 1
        // is free at 5; record 3 starts after 0 ends → lane 0 again.
        assert_eq!(lanes, vec![(0, 0), (1, 1), (2, 1), (3, 0)]);
    }

    fn tiny_tracer() -> LifecycleTracer {
        let mut t = LifecycleTracer::new();
        t.prefetch_queued(BlockAddr(0x40), 10);
        t.prefetch_issued(BlockAddr(0x40), 20, 1, true, 60);
        t.l2_fill(BlockAddr(0x40), true, 60);
        t.prefetch_first_use(BlockAddr(0x40), 100);
        t.prefetch_queued(BlockAddr(0x80), 12);
        t.run_end(200);
        t
    }

    #[test]
    fn chrome_trace_roundtrips_and_has_lanes() {
        let t = tiny_tracer();
        let doc = chrome_trace(&t, &[EpochSnapshot { cycles: 50, ..Default::default() }]);
        let text = doc.render();
        let back = Json::parse(&text).expect("self-parse");
        // Whole-valued floats re-parse as integers, so round-trip
        // equality is at the rendered-text level.
        assert_eq!(back.render(), text);
        let events = back.get("traceEvents").unwrap().as_array().unwrap();
        // 3 metadata + 1 DRAM slice + 2 queue slices + 1 MSHR slice +
        // 4 epoch counters.
        assert_eq!(events.len(), 11);
        let dram: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(0))
            .collect();
        assert_eq!(dram.len(), 1);
        assert_eq!(dram[0].get("ts").unwrap().as_u64(), Some(20));
        assert_eq!(dram[0].get("dur").unwrap().as_u64(), Some(40));
        assert_eq!(dram[0].get("tid").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_document_shape() {
        let t = tiny_tracer();
        let doc = metrics_json(&t, &[EpochSnapshot::default()], Some(1000));
        let back = Json::parse(&doc.render()).expect("self-parse");
        assert_eq!(back.get("epoch_interval").unwrap().as_u64(), Some(1000));
        let sum = back.get("summary").unwrap();
        assert_eq!(sum.get("issued").unwrap().as_u64(), Some(1));
        assert_eq!(sum.get("first_used").unwrap().as_u64(), Some(1));
        assert_eq!(sum.get("queued_at_end").unwrap().as_u64(), Some(1));
        let h = back.get("histograms").unwrap().get("fill_to_use").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(back.get("epochs").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn flag_helpers() {
        let args: Vec<String> = ["x", "--epoch", "500", "--trace-out", "p"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_u64(&args, "--epoch"), Some(500));
        assert_eq!(flag_value(&args, "--trace-out").as_deref(), Some("p"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }
}

//! On-disk cache of packed, pre-interpreted traces.
//!
//! Interpreting a kernel (setup + IR execution + hint derivation) costs
//! far more than replaying it at test scale, and the interpretation is
//! deterministic per `(kernel, scale, compiler configuration)` — so one
//! process can pay it and every later process can skip straight to
//! replay. An entry persists everything replay needs:
//!
//! * the packed trace ([`grp_cpu::PackedTrace`] disk form, which
//!   carries its own version + checksum),
//! * the **post-interpretation** functional memory image (the pointer
//!   and indirect engines read memory contents during replay, so the
//!   trace alone is not sufficient), serialized page-by-page in page-id
//!   order via [`Memory::snapshot_pages`],
//! * the heap range for the pointer base-and-bounds test.
//!
//! Entries land through [`crate::artifact::atomic_write`], so a killed
//! writer never leaves a torn entry — and every load fully validates
//! magic, version, structural lengths, and an FNV-1a checksum over the
//! whole entry. **Any** validation failure (stale version, truncation,
//! flipped bytes, a hand-edited file) makes [`TraceCache::load`] return
//! `None`: the caller rebuilds and overwrites, it never crashes and
//! never trusts a corrupt entry.
//!
//! The cache key is `(kernel, scale, fingerprint(compiler config))`.
//! Schemes sharing a compiler configuration (7 of the 12 share "no
//! hints") share one entry. The cache does **not** fingerprint the
//! simulator build itself — it is a per-checkout scratch directory;
//! wipe it (or let `--check` style gates rebuild) after changing
//! workload or interpreter code.

use std::io;
use std::path::{Path, PathBuf};

use grp_compiler::AnalysisConfig;
use grp_cpu::PackedTrace;
use grp_mem::{Addr, HeapRange, Memory, PAGE_BYTES};
use grp_workloads::Scale;

/// Entry file magic: "GRPC" (GRP cache).
const MAGIC: [u8; 4] = *b"GRPC";
/// Entry format version; bump on any layout change — old entries then
/// read as stale and rebuild.
const VERSION: u32 = 1;

/// Why a cache lookup did not produce a usable entry. The label feeds
/// the `grp_tracecache_misses_total{reason=…}` counter, so each
/// corruption class is countable separately (and testable: flipping a
/// byte must increment `checksum_mismatch`, not a catch-all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissReason {
    /// No entry file for this key (a cold cache, the common miss).
    Absent,
    /// The entry exists but reading it failed (permissions, I/O).
    Io,
    /// The file does not start with the "GRPC" magic.
    BadMagic,
    /// The entry was written by a different format version.
    StaleVersion,
    /// The whole-entry FNV-1a checksum does not match (corrupt/torn).
    ChecksumMismatch,
    /// The payload ends before its structure says it should.
    Truncated,
    /// Unread bytes follow a structurally-complete payload.
    TrailingBytes,
    /// The embedded packed trace failed its own validation.
    BadPackedTrace,
}

impl MissReason {
    /// The metric-label form (`"checksum_mismatch"`).
    pub fn label(self) -> &'static str {
        match self {
            MissReason::Absent => "absent",
            MissReason::Io => "io",
            MissReason::BadMagic => "bad_magic",
            MissReason::StaleVersion => "stale_version",
            MissReason::ChecksumMismatch => "checksum_mismatch",
            MissReason::Truncated => "truncated",
            MissReason::TrailingBytes => "trailing_bytes",
            MissReason::BadPackedTrace => "bad_packed_trace",
        }
    }
}

/// A failed [`TraceCache::probe`]: the classified reason plus the
/// human-readable first-failure message (same text the string errors
/// carried before reasons were typed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeError {
    /// The classified failure, for counters and dispatch.
    pub reason: MissReason,
    /// The detailed message (includes the entry path from `probe`).
    pub detail: String,
}

impl ProbeError {
    fn new(reason: MissReason, detail: impl Into<String>) -> Self {
        ProbeError { reason, detail: detail.into() }
    }
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for ProbeError {}

/// A directory of packed-trace cache entries.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
    /// Explicit I/O fault state for resilience tests; `None` (the
    /// default) falls back to the process-global `GRP_IOFAULT` arming.
    faults: Option<std::sync::Arc<crate::iofault::IoFaultState>>,
}

impl TraceCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), faults: None }
    }

    /// Arms this cache instance with an explicit I/O fault state
    /// (tests; production uses the `GRP_IOFAULT` global).
    pub fn with_faults(mut self, faults: std::sync::Arc<crate::iofault::IoFaultState>) -> Self {
        self.faults = Some(faults);
        self
    }

    fn fault_state(&self) -> Option<&crate::iofault::IoFaultState> {
        self.faults
            .as_deref()
            .or_else(|| crate::iofault::global().map(|a| a.as_ref()))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for one `(kernel, scale, compiler config)` key.
    pub fn entry_path(&self, kernel: &str, scale: Scale, cc: Option<&AnalysisConfig>) -> PathBuf {
        self.dir
            .join(format!("{kernel}-{}-{:016x}.grpt", scale_tag(scale), cc_fingerprint(cc)))
    }

    /// Loads a valid entry, or `None` when the entry is absent, stale,
    /// or corrupt in any way — the caller rebuilds in every `None`
    /// case. Use [`TraceCache::probe`] when the reason matters.
    ///
    /// Every call lands in the process-global metrics registry:
    /// `grp_tracecache_hits_total` on a hit,
    /// `grp_tracecache_misses_total{reason=…}` (one counter per
    /// [`MissReason`]) on a miss — and non-absent misses are logged at
    /// debug level with the full first-failure message.
    pub fn load(
        &self,
        kernel: &str,
        scale: Scale,
        cc: Option<&AnalysisConfig>,
    ) -> Option<(PackedTrace, Memory, HeapRange)> {
        let shard = crate::telemetry::process_shard();
        match self.probe(kernel, scale, cc) {
            Ok(entry) => {
                shard.counter("grp_tracecache_hits_total", &[]).inc();
                Some(entry)
            }
            Err(e) => {
                shard
                    .counter("grp_tracecache_misses_total", &[("reason", e.reason.label())])
                    .inc();
                if e.reason != MissReason::Absent {
                    // An absent entry is the normal cold-cache path;
                    // anything else means a real entry was rejected.
                    crate::telemetry::log::log_kv(
                        crate::telemetry::log::Level::Debug,
                        "tracecache",
                        "cache entry rejected; rebuilding",
                        &[
                            ("bench", kernel.into()),
                            ("reason", e.reason.label().into()),
                            ("detail", e.detail.as_str().into()),
                        ],
                    );
                }
                None
            }
        }
    }

    /// Like [`TraceCache::load`], naming why the entry is unusable
    /// (no metrics side effects — `load` owns the counters).
    ///
    /// # Errors
    ///
    /// A [`ProbeError`] classifying the first validation failure:
    /// missing file, bad magic, stale version, truncation, checksum
    /// mismatch, trailing bytes, or an invalid embedded packed trace.
    pub fn probe(
        &self,
        kernel: &str,
        scale: Scale,
        cc: Option<&AnalysisConfig>,
    ) -> Result<(PackedTrace, Memory, HeapRange), ProbeError> {
        let path = self.entry_path(kernel, scale, cc);
        let bytes = crate::iofault::read(self.fault_state(), &path).map_err(|e| {
            let reason = if e.kind() == io::ErrorKind::NotFound {
                MissReason::Absent
            } else {
                MissReason::Io
            };
            ProbeError::new(reason, format!("{}: {e}", path.display()))
        })?;
        decode_entry(&bytes)
            .map_err(|e| ProbeError::new(e.reason, format!("{}: {}", path.display(), e.detail)))
    }

    /// Persists one entry via the atomic-write layer (safe against
    /// kills and concurrent writers for the same key — last complete
    /// write wins, which is fine because entries for one key are
    /// byte-identical by determinism).
    ///
    /// # Errors
    ///
    /// Any I/O error from the staged write; the cache is best-effort,
    /// so callers typically warn and continue.
    pub fn store(
        &self,
        kernel: &str,
        scale: Scale,
        cc: Option<&AnalysisConfig>,
        trace: &PackedTrace,
        mem: &Memory,
        heap: HeapRange,
    ) -> io::Result<()> {
        let path = self.entry_path(kernel, scale, cc);
        crate::artifact::atomic_write_with(self.fault_state(), path, encode_entry(trace, mem, heap))
    }

    /// Crash-recovery scan over the cache directory: sweeps orphaned
    /// atomic-write staging files via [`crate::artifact::recover_dir`],
    /// then validates every `*.grpt` entry and **quarantines** (renames
    /// to `<name>.quarantine` — never silently deletes) each one that
    /// fails [`decode_entry`]. A quarantined key reads as an absent
    /// miss and rebuilds; the torn bytes stay on disk for inspection.
    /// Each quarantine lands a `grp_tracecache_quarantined_total`
    /// counter and a warn log.
    ///
    /// Returns `(recovery report, quarantined entry count)`.
    ///
    /// # Errors
    ///
    /// Only a failure to list the directory; a missing cache directory
    /// is an empty scan.
    pub fn recover(
        &self,
        max_age: std::time::Duration,
    ) -> io::Result<(crate::artifact::RecoveryReport, usize)> {
        let report = crate::artifact::recover_dir(&self.dir, max_age)?;
        let mut quarantined = 0usize;
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((report, 0)),
            Err(e) => return Err(e),
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "grpt") {
                continue;
            }
            let verdict = std::fs::read(&path).map_err(|e| e.to_string()).and_then(|bytes| {
                decode_entry(&bytes).map(|_| ()).map_err(|e| e.detail)
            });
            let Err(detail) = verdict else { continue };
            let mut dst = path.as_os_str().to_owned();
            dst.push(".quarantine");
            if std::fs::rename(&path, PathBuf::from(&dst)).is_ok() {
                quarantined += 1;
                crate::telemetry::process_shard()
                    .counter("grp_tracecache_quarantined_total", &[])
                    .inc();
                crate::telemetry::log::log_kv(
                    crate::telemetry::log::Level::Warn,
                    "tracecache",
                    "quarantined invalid cache entry",
                    &[
                        ("path", path.display().to_string().as_str().into()),
                        ("detail", detail.as_str().into()),
                    ],
                );
            }
        }
        Ok((report, quarantined))
    }
}

/// Serializes one entry. Layout (little-endian):
///
/// ```text
/// magic "GRPC" | version u32 | heap_start u64 | heap_end u64
/// | n_pages u64 | n_pages x (page_id u64, 4096 raw bytes)
/// | packed_len u64 | packed-trace bytes (self-checksummed)
/// | fnv1a64 checksum over everything above
/// ```
pub fn encode_entry(trace: &PackedTrace, mem: &Memory, heap: HeapRange) -> Vec<u8> {
    let pages = mem.snapshot_pages();
    let packed = trace.to_bytes();
    let mut out = Vec::with_capacity(4 + 4 + 8 * 4 + pages.len() * (8 + PAGE_BYTES) + packed.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&heap.start.0.to_le_bytes());
    out.extend_from_slice(&heap.end.0.to_le_bytes());
    out.extend_from_slice(&(pages.len() as u64).to_le_bytes());
    for (id, bytes) in pages {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&bytes[..]);
    }
    out.extend_from_slice(&(packed.len() as u64).to_le_bytes());
    out.extend_from_slice(&packed);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes and fully validates one entry (inverse of [`encode_entry`]).
///
/// # Errors
///
/// A [`ProbeError`] naming the first structural problem; never panics
/// on any input.
pub fn decode_entry(bytes: &[u8]) -> Result<(PackedTrace, Memory, HeapRange), ProbeError> {
    if bytes.len() < 8 {
        return Err(ProbeError::new(
            MissReason::Truncated,
            "truncated: shorter than the checksum alone",
        ));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if fnv1a64(body) != want {
        return Err(ProbeError::new(
            MissReason::ChecksumMismatch,
            "checksum mismatch (corrupt or torn entry)",
        ));
    }
    let mut c = Cur { b: body, at: 0 };
    if c.take(4)? != MAGIC {
        return Err(ProbeError::new(
            MissReason::BadMagic,
            "bad magic (not a trace-cache entry)",
        ));
    }
    let version = u32::from_le_bytes(c.take(4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(ProbeError::new(
            MissReason::StaleVersion,
            format!("stale entry version {version} (current {VERSION})"),
        ));
    }
    let heap = HeapRange {
        start: Addr(c.u64()?),
        end: Addr(c.u64()?),
    };
    let n_pages = c.u64()?;
    // Guard the allocation before trusting the count: every page costs
    // 8 + 4096 bytes of payload, so the count is bounded by what is
    // actually present.
    let per_page = (8 + PAGE_BYTES) as u64;
    if n_pages > (body.len() as u64 - c.at as u64) / per_page {
        return Err(ProbeError::new(
            MissReason::Truncated,
            format!("truncated: claims {n_pages} pages beyond the payload"),
        ));
    }
    let mut mem = Memory::new();
    for _ in 0..n_pages {
        let id = c.u64()?;
        let page: &[u8; PAGE_BYTES] = c
            .take(PAGE_BYTES)?
            .try_into()
            .expect("length checked by take");
        mem.restore_page(id, page);
    }
    let packed_len = c.u64()?;
    if packed_len > (body.len() - c.at) as u64 {
        return Err(ProbeError::new(
            MissReason::Truncated,
            "truncated: packed trace length exceeds the payload",
        ));
    }
    let trace = PackedTrace::from_bytes(c.take(packed_len as usize)?)
        .map_err(|e| ProbeError::new(MissReason::BadPackedTrace, format!("embedded packed trace: {e}")))?;
    if c.at != body.len() {
        return Err(ProbeError::new(
            MissReason::TrailingBytes,
            format!("trailing bytes: {} unread", body.len() - c.at),
        ));
    }
    Ok((trace, mem, heap))
}

struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProbeError> {
        if self.b.len() - self.at < n {
            return Err(ProbeError::new(
                MissReason::Truncated,
                format!("truncated at byte {}", self.at),
            ));
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, ProbeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Stable fingerprint of a compiler configuration for the entry name.
/// `None` (hint-blind schemes) and every distinct `AnalysisConfig`
/// hash apart; configurations equal under `PartialEq` hash together.
pub fn cc_fingerprint(cc: Option<&AnalysisConfig>) -> u64 {
    match cc {
        None => fnv1a64(b"no-hints"),
        // Every field is encoded explicitly so the fingerprint is a
        // function of the configuration's *values*, not of any derived
        // formatting.
        Some(c) => {
            let mut bytes = Vec::with_capacity(64);
            bytes.extend_from_slice(&c.l2_bytes.to_le_bytes());
            bytes.push(match c.policy {
                grp_compiler::SpatialPolicy::Conservative => 0,
                grp_compiler::SpatialPolicy::Default => 1,
                grp_compiler::SpatialPolicy::Aggressive => 2,
            });
            bytes.push(c.spatial as u8);
            bytes.push(c.pointer as u8);
            bytes.push(c.indirect as u8);
            bytes.push(c.varsize as u8);
            bytes.extend_from_slice(&c.small_stride_max.to_le_bytes());
            bytes.extend_from_slice(&c.spatial_stride_max.to_le_bytes());
            fnv1a64(&bytes)
        }
    }
}

fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_core::{run_trace_packed, Scheme, SimConfig};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("grp-tracecache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (PackedTrace, Memory, HeapRange) {
        let built = grp_workloads::by_name("twolf").expect("registered").build(Scale::Test);
        let cc = Scheme::GrpVar.compiler_config();
        let (trace, mem) = built.trace(cc.as_ref());
        let pt = PackedTrace::pack(&trace).expect("packs");
        (pt, mem, built.heap)
    }

    #[test]
    fn store_then_load_round_trips_and_replays_identically() {
        let dir = scratch("roundtrip");
        let cache = TraceCache::new(&dir);
        let (pt, mem, heap) = sample();
        let cc = Scheme::GrpVar.compiler_config();
        assert!(cache.load("twolf", Scale::Test, cc.as_ref()).is_none(), "cold cache misses");
        cache
            .store("twolf", Scale::Test, cc.as_ref(), &pt, &mem, heap)
            .expect("store");
        let (pt2, mem2, heap2) = cache.load("twolf", Scale::Test, cc.as_ref()).expect("hit");
        assert_eq!(pt, pt2, "packed trace survives the disk round trip");
        assert_eq!(heap, heap2);
        assert_eq!(mem.resident_pages(), mem2.resident_pages());
        // The replayed result from the cached entry is bit-identical.
        let cfg = SimConfig::paper();
        let a = run_trace_packed(&pt, &mem, heap, Scheme::GrpVar, &cfg);
        let b = run_trace_packed(&pt2, &mem2, heap2, Scheme::GrpVar, &cfg);
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_kernel_scale_and_config() {
        let cache = TraceCache::new("/tmp/unused");
        let var = Scheme::GrpVar.compiler_config();
        let fix = Scheme::GrpFix.compiler_config();
        let base = cache.entry_path("twolf", Scale::Test, var.as_ref());
        assert_ne!(base, cache.entry_path("mcf", Scale::Test, var.as_ref()));
        assert_ne!(base, cache.entry_path("twolf", Scale::Small, var.as_ref()));
        assert_ne!(base, cache.entry_path("twolf", Scale::Test, fix.as_ref()));
        assert_ne!(base, cache.entry_path("twolf", Scale::Test, None));
        // Schemes sharing a config share the entry (7 hint-blind schemes).
        assert_eq!(
            cache.entry_path("twolf", Scale::Test, Scheme::Srp.compiler_config().as_ref()),
            cache.entry_path("twolf", Scale::Test, Scheme::NoPrefetch.compiler_config().as_ref()),
        );
    }

    #[test]
    fn corrupt_and_stale_entries_read_as_misses_with_named_reasons() {
        let dir = scratch("corrupt");
        let cache = TraceCache::new(&dir);
        let (pt, mem, heap) = sample();
        cache.store("twolf", Scale::Test, None, &pt, &mem, heap).expect("store");
        let path = cache.entry_path("twolf", Scale::Test, None);
        let good = std::fs::read(&path).expect("entry exists");

        // Flipped byte mid-payload: checksum catches it.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        let err = cache.probe("twolf", Scale::Test, None).unwrap_err();
        assert_eq!(err.reason, MissReason::ChecksumMismatch);
        assert!(err.detail.contains("checksum mismatch"), "{err}");
        assert!(cache.load("twolf", Scale::Test, None).is_none(), "corrupt reads as a miss");

        // Truncation at every decile: a miss, never a panic.
        for i in 1..10 {
            std::fs::write(&path, &good[..good.len() * i / 10]).unwrap();
            assert!(
                cache.load("twolf", Scale::Test, None).is_none(),
                "truncated to {i}0% must miss"
            );
        }

        // Stale version: rebuild, not crash. (Re-checksum so the version
        // field is the first failure seen.)
        let mut stale = good.clone();
        stale[4..8].copy_from_slice(&99u32.to_le_bytes());
        let body_len = stale.len() - 8;
        let sum = fnv1a64(&stale[..body_len]);
        stale[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &stale).unwrap();
        let err = cache.probe("twolf", Scale::Test, None).unwrap_err();
        assert_eq!(err.reason, MissReason::StaleVersion);
        assert!(err.detail.contains("stale entry version 99"), "{err}");

        // Wrong magic.
        let mut nomagic = good.clone();
        nomagic[0..4].copy_from_slice(b"NOPE");
        let sum = fnv1a64(&nomagic[..body_len]);
        nomagic[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &nomagic).unwrap();
        let err = cache.probe("twolf", Scale::Test, None).unwrap_err();
        assert_eq!(err.reason, MissReason::BadMagic);
        assert!(err.detail.contains("bad magic"), "{err}");

        // Overwriting with a fresh store recovers.
        cache.store("twolf", Scale::Test, None, &pt, &mem, heap).expect("re-store");
        assert!(cache.load("twolf", Scale::Test, None).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_fault_is_a_named_io_miss() {
        use crate::iofault::{IoFaultEvent, IoFaultKind, IoFaultPlan, IoFaultState};
        let dir = scratch("readfault");
        let (pt, mem, heap) = sample();
        let faults = std::sync::Arc::new(IoFaultState::new(&IoFaultPlan::new(vec![
            IoFaultEvent { op: 0, kind: IoFaultKind::ReadError },
        ])));
        let cache = TraceCache::new(&dir).with_faults(faults.clone());
        cache.store("twolf", Scale::Test, None, &pt, &mem, heap).expect("store");
        let err = cache.probe("twolf", Scale::Test, None).unwrap_err();
        assert_eq!(err.reason, MissReason::Io, "injected EIO is a named miss");
        assert!(err.detail.contains("injected read fault"), "{err}");
        assert_eq!(faults.injected(), 1);
        // The next read (fault spent) hits: the entry itself is fine.
        assert!(cache.load("twolf", Scale::Test, None).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_store_fault_never_tears_an_entry() {
        use crate::iofault::{IoFaultEvent, IoFaultKind, IoFaultPlan, IoFaultState};
        let dir = scratch("storefault");
        let (pt, mem, heap) = sample();
        for kind in [IoFaultKind::ShortWrite, IoFaultKind::RenameFail, IoFaultKind::FsyncFail] {
            let faults = std::sync::Arc::new(IoFaultState::new(&IoFaultPlan::new(vec![
                IoFaultEvent { op: 0, kind },
            ])));
            let cache = TraceCache::new(&dir).with_faults(faults);
            cache
                .store("twolf", Scale::Test, None, &pt, &mem, heap)
                .expect_err("armed store fails");
            // Either no entry landed, or (never) a torn one: a plain
            // probe must not see a corrupt entry.
            let err = cache.probe("twolf", Scale::Test, None).unwrap_err();
            assert_eq!(err.reason, MissReason::Absent, "{kind:?}: no torn entry published");
            // Retry (fault spent) lands a fully valid entry.
            cache.store("twolf", Scale::Test, None, &pt, &mem, heap).expect("retry");
            assert!(cache.load("twolf", Scale::Test, None).is_some());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn recover_quarantines_invalid_entries_and_sweeps_orphans() {
        let dir = scratch("recover");
        let cache = TraceCache::new(&dir);
        let (pt, mem, heap) = sample();
        cache.store("twolf", Scale::Test, None, &pt, &mem, heap).expect("store");
        let good = cache.entry_path("twolf", Scale::Test, None);
        // A torn sibling entry (half the valid bytes) and a dead-owner
        // staging orphan.
        let torn = dir.join("mcf-test-0000000000000000.grpt");
        let bytes = std::fs::read(&good).unwrap();
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
        let orphan = dir.join("x.grpt.4999999.3.tmp");
        std::fs::write(&orphan, "partial").unwrap();
        let (report, quarantined) =
            cache.recover(std::time::Duration::ZERO).expect("recover scan");
        assert_eq!(quarantined, 1, "torn entry quarantined");
        assert_eq!(report.swept_tmp, 1, "staging orphan swept");
        assert!(!torn.exists(), "torn entry renamed away");
        let mut q = torn.into_os_string();
        q.push(".quarantine");
        assert!(PathBuf::from(q).exists(), "quarantine preserves the bytes");
        assert!(good.exists(), "valid entry untouched");
        assert!(cache.load("twolf", Scale::Test, None).is_some());
        // Idempotent: a second scan finds nothing.
        let (report2, q2) = cache.recover(std::time::Duration::ZERO).expect("rescan");
        assert_eq!((report2.swept_tmp, q2), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_value_stable() {
        let a = cc_fingerprint(Some(&AnalysisConfig::default()));
        let b = cc_fingerprint(Some(&AnalysisConfig::grp_var()));
        assert_eq!(a, b, "equal configs fingerprint together");
        assert_ne!(a, cc_fingerprint(Some(&AnalysisConfig::grp_fix())));
        assert_ne!(a, cc_fingerprint(Some(&AnalysisConfig::aggressive())));
        assert_ne!(a, cc_fingerprint(None));
    }
}

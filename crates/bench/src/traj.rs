//! `BENCH_perf.json` trajectory handling: crash-safe load/append with
//! concurrent-writer serialization, plus shape validation for both
//! entry kinds (serial harness entries and fleet-scheduler entries).
//!
//! Two harness bugs lived here before this module existed:
//!
//! * the perf bin mapped **every** `read_to_string` error to "start a
//!   fresh trajectory", so a transient `EACCES` (or a path that is a
//!   directory) silently discarded the recorded history on the next
//!   atomic write — [`load_entries`] now treats only
//!   `ErrorKind::NotFound` as fresh and refuses everything else;
//! * two concurrent `perf` processes appending to one file raced
//!   read-modify-write, losing one entry — [`append_entry`] serializes
//!   writers through a `<path>.lock` file (created with `create_new`,
//!   retried with a deadline) around the read+rename critical section.

use std::fs::OpenOptions;
use std::io::{ErrorKind, Write as _};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::sched::FleetStats;

/// Reads the entry list from a trajectory file.
///
/// A missing file is a fresh trajectory (`Ok(vec![])`). **Any other
/// read error is fatal**: an unreadable-but-existing file must never be
/// mistaken for an empty history, because the caller's next atomic
/// write would replace the real file with a one-entry trajectory.
///
/// # Errors
///
/// Non-`NotFound` I/O errors, malformed JSON, or a document without an
/// `entries` array — all naming `path`.
pub fn load_entries(path: &str) -> Result<Vec<Json>, String> {
    load_entries_with(crate::iofault::global().map(|a| a.as_ref()), path)
}

/// [`load_entries`] with an explicit I/O fault state (tests). An
/// injected read `EIO` is indistinguishable from a real one: it must
/// surface as "refusing to reset", never as a fresh trajectory.
///
/// # Errors
///
/// As [`load_entries`], plus any injected read fault.
pub fn load_entries_with(
    faults: Option<&crate::iofault::IoFaultState>,
    path: &str,
) -> Result<Vec<Json>, String> {
    let text = match crate::iofault::read_to_string(faults, std::path::Path::new(path)) {
        Ok(t) => t,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(format!(
                "cannot read {path}: {e} — refusing to reset the recorded trajectory"
            ))
        }
    };
    let doc = Json::parse(&text)
        .map_err(|e| format!("{path} is not valid JSON ({e}); refusing to overwrite"))?;
    doc.get("entries")
        .and_then(|e| e.as_array())
        .map(|a| a.to_vec())
        .ok_or_else(|| format!("{path} exists but has no 'entries' array"))
}

/// Appends one entry to the trajectory at `path`, serialized against
/// concurrent appenders via a lock file and landed through
/// [`crate::artifact::atomic_write`].
///
/// # Errors
///
/// Lock acquisition timeout, any [`load_entries`] failure, or the
/// final write failing.
pub fn append_entry(path: &str, entry: Json) -> Result<(), String> {
    append_entry_with(crate::iofault::global().map(|a| a.as_ref()), path, entry)
}

/// [`append_entry`] with an explicit I/O fault state (tests). A fault
/// anywhere in the read-modify-write leaves the previous trajectory
/// intact — the entry is reported lost, never the history.
///
/// # Errors
///
/// As [`append_entry`], plus any injected fault.
pub fn append_entry_with(
    faults: Option<&crate::iofault::IoFaultState>,
    path: &str,
    entry: Json,
) -> Result<(), String> {
    let _lock = LockFile::acquire(path, Duration::from_secs(10))?;
    let mut entries = load_entries_with(faults, path)?;
    entries.push(entry);
    let doc = Json::object().set("version", 1u64).set("entries", Json::Array(entries));
    crate::artifact::atomic_write_with(faults, path, doc.render())
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// A held `<target>.lock` file; removed on drop. `create_new` makes
/// creation the atomic acquire; a writer that dies without cleanup
/// leaves a stale lock that times out loudly (naming the lock path)
/// rather than deadlocking silently.
#[derive(Debug)]
struct LockFile {
    path: PathBuf,
}

impl LockFile {
    fn acquire(target: &str, timeout: Duration) -> Result<Self, String> {
        let path = PathBuf::from(format!("{target}.lock"));
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "timed out waiting for {} (held by another writer, or stale \
                             from a crashed one — remove it to proceed)",
                            path.display()
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(format!("cannot create lock {}: {e}", path.display())),
            }
        }
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Builds the fleet-scheduler entry shape: the common trajectory fields
/// (so every existing reader still parses it) plus `kind: "fleet"`,
/// worker accounting, and queue-wait percentiles. `kernels` rows carry
/// a `worker` field on top of the serial per-cell fields.
pub fn fleet_entry(
    label: &str,
    scale: &str,
    schemes: &[&str],
    stats: &FleetStats,
    kernels: Vec<Json>,
) -> Json {
    let q = &stats.queue_wait_micros;
    Json::object()
        .set("label", label)
        .set("kind", "fleet")
        .set("scale", scale)
        .set(
            "schemes",
            Json::Array(schemes.iter().map(|s| Json::from(*s)).collect()),
        )
        .set("workers", stats.workers as u64)
        .set("cells", stats.cells as u64)
        .set("errors", stats.errors as u64)
        .set("steals", stats.steals)
        .set("wall_seconds", stats.wall_seconds)
        .set("setup_seconds", stats.setup_seconds)
        .set("replay_seconds", stats.replay_seconds)
        .set("events", stats.events)
        .set("sim_cycles", stats.sim_cycles)
        .set("events_per_sec", stats.events_per_sec())
        .set("sim_cycles_per_sec", stats.sim_cycles_per_sec())
        .set(
            "per_worker",
            Json::Array(
                (0..stats.workers)
                    .map(|w| {
                        Json::object()
                            .set("worker", w as u64)
                            .set("cells", stats.cells_per_worker[w] as u64)
                            .set("busy_seconds", stats.busy_seconds[w])
                            .set("utilization", stats.utilization(w))
                    })
                    .collect(),
            ),
        )
        .set(
            "queue_wait_micros",
            Json::object()
                .set("p50", q.percentile(0.50))
                .set("p90", q.percentile(0.90))
                .set("p99", q.percentile(0.99))
                .set("max", q.max())
                .set("mean", q.mean()),
        )
        .set("kernels", Json::Array(kernels))
}

/// Validates a trajectory file's structure (both entry kinds),
/// returning the entry count.
///
/// # Errors
///
/// Describes the first malformed field, naming the entry index.
pub fn check_trajectory(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("malformed: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(|e| e.as_array())
        .ok_or("missing 'entries' array")?;
    if entries.is_empty() {
        return Err("no entries recorded".to_string());
    }
    for (i, e) in entries.iter().enumerate() {
        for key in ["label", "scale"] {
            e.get(key)
                .and_then(|v| v.as_str())
                .ok_or(format!("entry {i}: missing string '{key}'"))?;
        }
        for key in ["events_per_sec", "sim_cycles_per_sec", "replay_seconds"] {
            let v = e
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or(format!("entry {i}: missing number '{key}'"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("entry {i}: '{key}' is not positive"));
            }
        }
        let kernels = e
            .get("kernels")
            .and_then(|k| k.as_array())
            .ok_or(format!("entry {i}: missing 'kernels' array"))?;
        for (j, k) in kernels.iter().enumerate() {
            k.get("bench")
                .and_then(|v| v.as_str())
                .ok_or(format!("entry {i} kernel {j}: missing 'bench'"))?;
            k.get("scheme")
                .and_then(|v| v.as_str())
                .ok_or(format!("entry {i} kernel {j}: missing 'scheme'"))?;
            k.get("events_per_sec")
                .and_then(|v| v.as_f64())
                .ok_or(format!("entry {i} kernel {j}: missing 'events_per_sec'"))?;
        }
        if e.get("kind").and_then(|v| v.as_str()) == Some("fleet") {
            check_fleet_entry(i, e, kernels.len())?;
        }
    }
    Ok(entries.len())
}

/// The fleet-specific fields of one `kind: "fleet"` entry.
fn check_fleet_entry(i: usize, e: &Json, kernel_rows: usize) -> Result<(), String> {
    let workers = e
        .get("workers")
        .and_then(|v| v.as_u64())
        .ok_or(format!("entry {i}: fleet entry missing 'workers'"))?;
    if workers == 0 {
        return Err(format!("entry {i}: fleet entry has zero workers"));
    }
    let cells = e
        .get("cells")
        .and_then(|v| v.as_u64())
        .ok_or(format!("entry {i}: fleet entry missing 'cells'"))?;
    if cells as usize != kernel_rows {
        return Err(format!(
            "entry {i}: fleet 'cells' ({cells}) disagrees with kernels rows ({kernel_rows})"
        ));
    }
    let per_worker = e
        .get("per_worker")
        .and_then(|v| v.as_array())
        .ok_or(format!("entry {i}: fleet entry missing 'per_worker'"))?;
    if per_worker.len() as u64 != workers {
        return Err(format!(
            "entry {i}: per_worker has {} rows for {workers} workers",
            per_worker.len()
        ));
    }
    let mut worker_cells = 0u64;
    for (w, row) in per_worker.iter().enumerate() {
        let util = row
            .get("utilization")
            .and_then(|v| v.as_f64())
            .ok_or(format!("entry {i} worker {w}: missing 'utilization'"))?;
        if !(0.0..=1.0 + 1e-9).contains(&util) {
            return Err(format!("entry {i} worker {w}: utilization {util} out of [0,1]"));
        }
        row.get("busy_seconds")
            .and_then(|v| v.as_f64())
            .ok_or(format!("entry {i} worker {w}: missing 'busy_seconds'"))?;
        worker_cells += row
            .get("cells")
            .and_then(|v| v.as_u64())
            .ok_or(format!("entry {i} worker {w}: missing 'cells'"))?;
    }
    if worker_cells != cells {
        return Err(format!(
            "entry {i}: per-worker cells sum to {worker_cells}, entry says {cells}"
        ));
    }
    let q = e
        .get("queue_wait_micros")
        .ok_or(format!("entry {i}: fleet entry missing 'queue_wait_micros'"))?;
    let pct = |key: &str| -> Result<f64, String> {
        q.get(key)
            .and_then(|v| v.as_f64())
            .ok_or(format!("entry {i}: queue_wait_micros missing '{key}'"))
    };
    let (p50, p90, p99) = (pct("p50")?, pct("p90")?, pct("p99")?);
    if !(p50 <= p90 && p90 <= p99) {
        return Err(format!(
            "entry {i}: queue-wait percentiles not monotone (p50={p50} p90={p90} p99={p99})"
        ));
    }
    // Each kernels row must name the worker that ran the cell.
    let kernels = e.get("kernels").and_then(|k| k.as_array()).expect("checked");
    for (j, k) in kernels.iter().enumerate() {
        let w = k
            .get("worker")
            .and_then(|v| v.as_u64())
            .ok_or(format!("entry {i} kernel {j}: fleet row missing 'worker'"))?;
        if w >= workers {
            return Err(format!("entry {i} kernel {j}: worker {w} out of range"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_core::LatencyHist;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grp-traj-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn entry(label: &str) -> Json {
        Json::object()
            .set("label", label)
            .set("scale", "test")
            .set("events_per_sec", 1.0)
            .set("sim_cycles_per_sec", 1.0)
            .set("replay_seconds", 1.0)
            .set("kernels", Json::Array(vec![]))
    }

    #[test]
    fn missing_file_is_a_fresh_trajectory() {
        let dir = scratch("fresh");
        let path = dir.join("nope.json");
        assert_eq!(load_entries(path.to_str().unwrap()), Ok(Vec::new()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_existing_path_must_not_reset_history() {
        // Regression: every read error used to map to Vec::new(), so a
        // transient failure (here: the path is a *directory*, EISDIR)
        // discarded the whole recorded history on the next write. Now
        // only NotFound means "start fresh".
        let dir = scratch("unreadable");
        let path = dir.to_str().unwrap();
        let err = load_entries(path).unwrap_err();
        assert!(err.contains("refusing to reset"), "{err}");
        assert!(err.contains(path), "error names the path: {err}");
        // And append_entry refuses too, leaving the directory intact.
        let err = append_entry(path, entry("x")).unwrap_err();
        assert!(err.contains("refusing to reset"), "{err}");
        assert!(dir.is_dir(), "the unreadable target is untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_json_is_fatal_not_fresh() {
        let dir = scratch("malformed");
        let path = dir.join("t.json");
        std::fs::write(&path, "{\"entries\": [tru").unwrap();
        let err = load_entries(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        let err = load_entries("/dev/null").err();
        assert!(err.is_some(), "empty file is malformed, not fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_round_trips_and_accumulates() {
        let dir = scratch("append");
        let path = dir.join("t.json");
        let p = path.to_str().unwrap();
        append_entry(p, entry("a")).expect("first");
        append_entry(p, entry("b")).expect("second");
        let entries = load_entries(p).expect("load");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].get("label").and_then(|l| l.as_str()), Some("b"));
        assert_eq!(check_trajectory(p), Ok(2));
        assert!(!path.with_extension("json.lock").exists(), "lock released");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_both_survive() {
        // Regression for the read-modify-write race: two writers
        // appending at once used to lose one entry (both read N
        // entries, both wrote N+1). The lock file serializes them.
        let dir = scratch("race");
        let path = dir.join("t.json");
        let p: String = path.to_str().unwrap().to_string();
        const PER_THREAD: usize = 8;
        std::thread::scope(|s| {
            for t in 0..2 {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        append_entry(&p, entry(&format!("t{t}-{i}"))).expect("append");
                    }
                });
            }
        });
        let entries = load_entries(&p).expect("load");
        assert_eq!(
            entries.len(),
            2 * PER_THREAD,
            "every concurrent append must survive"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_never_reset_or_tear_the_trajectory() {
        use crate::iofault::{IoFaultEvent, IoFaultKind, IoFaultPlan, IoFaultState};
        let dir = scratch("iofault");
        let path = dir.join("t.json");
        let p = path.to_str().unwrap();
        append_entry(p, entry("a")).expect("seed the history");

        // Read EIO: refuses to reset, never "fresh".
        let st = IoFaultState::new(&IoFaultPlan::new(vec![IoFaultEvent {
            op: 0,
            kind: IoFaultKind::ReadError,
        }]));
        let err = load_entries_with(Some(&st), p).unwrap_err();
        assert!(err.contains("refusing to reset"), "{err}");

        // Every write-side fault: append errors, history intact.
        for kind in [
            IoFaultKind::ShortWrite,
            IoFaultKind::WriteNoSpace,
            IoFaultKind::FsyncFail,
            IoFaultKind::RenameFail,
        ] {
            let st = IoFaultState::new(&IoFaultPlan::new(vec![IoFaultEvent {
                // op 0 is the load's read (unarmed for writes); the
                // write-class counters are independent, so op 0 is
                // this append's staged write.
                op: 0,
                kind,
            }]));
            let err = append_entry_with(Some(&st), p, entry("lost")).unwrap_err();
            assert!(err.contains("cannot write"), "{kind:?}: {err}");
            let entries = load_entries(p).expect("history readable");
            assert_eq!(entries.len(), 1, "{kind:?}: history intact, entry reported lost");
            assert!(
                !path.with_extension("json.lock").exists(),
                "{kind:?}: lock released on the error path"
            );
        }
        // A clean retry still appends.
        append_entry(p, entry("b")).expect("retry");
        assert_eq!(load_entries(p).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_times_out_with_a_named_path() {
        let dir = scratch("stale");
        let path = dir.join("t.json");
        let p = path.to_str().unwrap();
        std::fs::write(format!("{p}.lock"), "12345").unwrap();
        let err = LockFile::acquire(p, Duration::from_millis(30)).unwrap_err();
        assert!(err.contains(".lock"), "{err}");
        assert!(err.contains("stale"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn fleet_stats() -> FleetStats {
        let mut q = LatencyHist::default();
        for v in [1u64, 10, 100, 1000] {
            q.record(v);
        }
        FleetStats {
            workers: 2,
            cells: 2,
            errors: 0,
            wall_seconds: 1.0,
            events: 100,
            sim_cycles: 500,
            replay_seconds: 1.5,
            setup_seconds: 0.25,
            busy_seconds: vec![0.9, 0.8],
            cells_per_worker: vec![1, 1],
            steals: 1,
            queue_wait_micros: q,
        }
    }

    fn fleet_cell(worker: u64) -> Json {
        Json::object()
            .set("bench", "twolf")
            .set("scheme", "none")
            .set("events", 50u64)
            .set("sim_cycles", 250u64)
            .set("replay_seconds", 0.75)
            .set("events_per_sec", 66.6)
            .set("worker", worker)
    }

    #[test]
    fn fleet_entry_shape_validates() {
        let dir = scratch("fleet");
        let path = dir.join("t.json");
        let p = path.to_str().unwrap();
        let e = fleet_entry(
            "fleet-test",
            "test",
            &["none"],
            &fleet_stats(),
            vec![fleet_cell(0), fleet_cell(1)],
        );
        append_entry(p, e).expect("append fleet entry");
        assert_eq!(check_trajectory(p), Ok(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_entry_inconsistencies_are_flagged() {
        let dir = scratch("fleet-bad");
        let path = dir.join("t.json");
        let p = path.to_str().unwrap();
        // Worker index out of range in a cell row.
        let bad = fleet_entry(
            "fleet-bad",
            "test",
            &["none"],
            &fleet_stats(),
            vec![fleet_cell(0), fleet_cell(9)],
        );
        append_entry(p, bad).expect("append");
        let err = check_trajectory(p).unwrap_err();
        assert!(err.contains("worker 9 out of range"), "{err}");
        // Cells count disagreeing with rows.
        let mut stats = fleet_stats();
        stats.cells = 3;
        stats.cells_per_worker = vec![2, 1];
        std::fs::remove_file(&path).unwrap();
        append_entry(
            p,
            fleet_entry("fleet-bad2", "test", &["none"], &stats, vec![fleet_cell(0), fleet_cell(1)]),
        )
        .expect("append");
        let err = check_trajectory(p).unwrap_err();
        assert!(err.contains("disagrees with kernels rows"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Deterministic, seeded I/O fault injection for the harness's disk
//! boundary — the process-level sibling of [`grp_core::faults`].
//!
//! An [`IoFaultPlan`] is a reproducible list of per-operation fault
//! events — short writes, `ENOSPC`, read `EIO`, failed renames, failed
//! fsyncs — generated from a single seed via the testkit RNG. The plan
//! is *data*: compiling it into an [`IoFaultState`] arms narrow seams
//! inside [`crate::artifact::atomic_write`], the trace cache's entry
//! reader, and the trajectory's load/append path. An empty plan is
//! behaviourally inert, so a zero-fault run is byte-identical to an
//! uninstrumented one.
//!
//! The crash-only contract the plan verifies (see DESIGN.md §15):
//! under any plan, published artifacts are always one complete
//! payload (a faulted write leaves the previous file intact),
//! corrupt or unreadable trace-cache entries are *named misses* that
//! rebuild, and the perf trajectory never silently resets. Every
//! injected fault also lands a `grp_iofault_injected_total{kind=…}`
//! counter in the telemetry registry, so a chaos run can prove its
//! storm actually fired.
//!
//! Fault events address operations by **per-class index**: the plan
//! event `{op: 2, kind: ReadError}` fails the third read issued
//! through an [`IoFaultState`], whichever file that turns out to be.
//! This keeps plans independent of path layout while staying exactly
//! reproducible for a fixed operation sequence.
//!
//! Process-global arming: the `GRP_IOFAULT` environment variable
//! installs a state for every seam that doesn't carry an explicit one
//! (the chaos gate uses this to arm a serve *subprocess*). Accepted
//! values: a [`IoFaultPlan::builtin`] plan name, `seed:<u64>` for a
//! generated plan, or `torn-rename` — a deliberate-bug mode in which
//! `atomic_write` publishes a half-written file *at the final path*,
//! used as negative teeth to prove the chaos gate can fail.

use grp_testkit::proptest::Arbitrary;
use grp_testkit::Rng;

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which I/O operation class an event addresses, and how it fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// The staged write lands only a prefix of the payload, then the
    /// device reports `ENOSPC`. The atomic-write protocol must clean
    /// the partial temp file and leave the final path untouched.
    ShortWrite,
    /// The staged write fails immediately with `ENOSPC` (no bytes
    /// land).
    WriteNoSpace,
    /// A whole-file read fails with `EIO`. Cache readers must treat
    /// this as a named miss; the trajectory must refuse to reset.
    ReadError,
    /// The temp→final rename fails with `EIO` after a fully staged,
    /// fsynced temp file. The final path must be untouched and the
    /// temp cleaned up.
    RenameFail,
    /// `sync_all` on the staged temp file fails with `EIO` before the
    /// rename is attempted.
    FsyncFail,
}

impl IoFaultKind {
    /// Stable telemetry/debug label (`grp_iofault_injected_total{kind=…}`).
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::ShortWrite => "short_write",
            IoFaultKind::WriteNoSpace => "write_nospace",
            IoFaultKind::ReadError => "read_eio",
            IoFaultKind::RenameFail => "rename_fail",
            IoFaultKind::FsyncFail => "fsync_fail",
        }
    }

    /// The operation class this kind arms (write faults share a class:
    /// at most one of `ShortWrite`/`WriteNoSpace` fires per write op).
    fn class(self) -> OpClass {
        match self {
            IoFaultKind::ShortWrite | IoFaultKind::WriteNoSpace => OpClass::Write,
            IoFaultKind::ReadError => OpClass::Read,
            IoFaultKind::RenameFail => OpClass::Rename,
            IoFaultKind::FsyncFail => OpClass::Fsync,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Write,
    Read,
    Rename,
    Fsync,
}

/// One armed fault: the `op`-th operation of the kind's class (0-based,
/// counted per [`IoFaultState`]) fails as `kind` says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFaultEvent {
    /// Index within the operation class (0 = the first such op).
    pub op: u32,
    /// How that operation fails.
    pub kind: IoFaultKind,
}

/// A reproducible schedule of I/O faults. The empty plan is inert.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoFaultPlan {
    /// The armed events, in no particular order (application is by
    /// per-class operation index).
    pub events: Vec<IoFaultEvent>,
}

impl IoFaultPlan {
    /// A plan over the given events.
    pub fn new(events: Vec<IoFaultEvent>) -> Self {
        Self { events }
    }

    /// The inert plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A fully reproducible random plan: same seed, same plan, on
    /// every build and machine (xoshiro256** seeded through
    /// splitmix64).
    pub fn generate(seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Self::arbitrary(&mut rng)
    }

    /// The named built-in plans the resilience tests sweep: one plan
    /// per fault class plus a combined "io-storm".
    pub fn builtin() -> Vec<(&'static str, IoFaultPlan)> {
        let ev = |op: u32, kind: IoFaultKind| IoFaultEvent { op, kind };
        vec![
            (
                "short-write",
                IoFaultPlan::new(vec![ev(0, IoFaultKind::ShortWrite)]),
            ),
            (
                "no-space",
                IoFaultPlan::new(vec![ev(0, IoFaultKind::WriteNoSpace)]),
            ),
            (
                "read-eio",
                IoFaultPlan::new(vec![ev(0, IoFaultKind::ReadError)]),
            ),
            (
                "failed-rename",
                IoFaultPlan::new(vec![ev(0, IoFaultKind::RenameFail)]),
            ),
            (
                "failed-fsync",
                IoFaultPlan::new(vec![ev(0, IoFaultKind::FsyncFail)]),
            ),
            (
                "io-storm",
                IoFaultPlan::new(vec![
                    ev(0, IoFaultKind::ShortWrite),
                    ev(2, IoFaultKind::WriteNoSpace),
                    ev(0, IoFaultKind::ReadError),
                    ev(1, IoFaultKind::RenameFail),
                    ev(3, IoFaultKind::FsyncFail),
                ]),
            ),
        ]
    }
}

impl Arbitrary for IoFaultEvent {
    fn arbitrary(rng: &mut Rng) -> Self {
        let op = rng.gen_range(0u32..8);
        let kind = match rng.gen_range(0u32..5) {
            0 => IoFaultKind::ShortWrite,
            1 => IoFaultKind::WriteNoSpace,
            2 => IoFaultKind::ReadError,
            3 => IoFaultKind::RenameFail,
            _ => IoFaultKind::FsyncFail,
        };
        Self { op, kind }
    }

    fn shrink_value(&self) -> Vec<Self> {
        if self.op > 0 {
            vec![Self {
                op: self.op / 2,
                kind: self.kind,
            }]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for IoFaultPlan {
    fn arbitrary(rng: &mut Rng) -> Self {
        let n = rng.gen_range(0usize..=4);
        Self::new((0..n).map(|_| IoFaultEvent::arbitrary(rng)).collect())
    }

    fn shrink_value(&self) -> Vec<Self> {
        if self.events.is_empty() {
            return Vec::new();
        }
        // Structure first — the empty plan is the single most
        // diagnostic simplification — then fewer events, then earlier
        // operation indices.
        let mut out = vec![IoFaultPlan::none()];
        if self.events.len() > 1 {
            out.push(IoFaultPlan::new(
                self.events[..self.events.len() / 2].to_vec(),
            ));
            out.push(IoFaultPlan::new(self.events[1..].to_vec()));
            out.push(IoFaultPlan::new(
                self.events[..self.events.len() - 1].to_vec(),
            ));
        }
        for (i, ev) in self.events.iter().enumerate() {
            for shrunk in ev.shrink_value() {
                let mut events = self.events.clone();
                events[i] = shrunk;
                out.push(IoFaultPlan::new(events));
            }
        }
        out
    }
}

/// Runtime cursor over an [`IoFaultPlan`]: per-class atomic operation
/// counters plus the compiled `op → kind` fault maps. Thread-safe —
/// the same state can arm every seam in a multi-worker process.
#[derive(Debug, Default)]
pub struct IoFaultState {
    write_faults: HashMap<u32, IoFaultKind>,
    read_faults: HashMap<u32, IoFaultKind>,
    rename_faults: HashMap<u32, IoFaultKind>,
    fsync_faults: HashMap<u32, IoFaultKind>,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
    rename_ops: AtomicU64,
    fsync_ops: AtomicU64,
    injected: AtomicU64,
    /// Deliberate-bug mode: `atomic_write` publishes a half payload at
    /// the final path. Negative teeth for the chaos gate — never part
    /// of a legitimate plan.
    torn_rename: bool,
    /// Telemetry shard faults are recorded to; `None` uses the
    /// process-global shard. Tests pass their own shard so parallel
    /// tests don't contaminate each other's counts.
    shard: Option<Arc<crate::telemetry::Shard>>,
}

impl IoFaultState {
    /// Compiles `plan` into its runtime form (recording to the
    /// process-global telemetry shard).
    pub fn new(plan: &IoFaultPlan) -> Self {
        let mut st = Self::default();
        for ev in &plan.events {
            let map = match ev.kind.class() {
                OpClass::Write => &mut st.write_faults,
                OpClass::Read => &mut st.read_faults,
                OpClass::Rename => &mut st.rename_faults,
                OpClass::Fsync => &mut st.fsync_faults,
            };
            // First event wins per (class, op); later duplicates are
            // redundant anyway.
            map.entry(ev.op).or_insert(ev.kind);
        }
        st
    }

    /// The torn-rename deliberate-bug state (see [`IoFaultState`]).
    pub fn torn_rename() -> Self {
        Self {
            torn_rename: true,
            ..Self::default()
        }
    }

    /// Redirects fault telemetry to an explicit shard (tests).
    pub fn with_shard(mut self, shard: Arc<crate::telemetry::Shard>) -> Self {
        self.shard = Some(shard);
        self
    }

    /// True in the torn-rename deliberate-bug mode.
    pub fn is_torn_rename(&self) -> bool {
        self.torn_rename
    }

    /// Total faults this state has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn record(&self, kind: IoFaultKind) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        let labels = [("kind", kind.label())];
        match &self.shard {
            Some(s) => s.counter("grp_iofault_injected_total", &labels).inc(),
            None => crate::telemetry::process_shard()
                .counter("grp_iofault_injected_total", &labels)
                .inc(),
        }
    }

    fn next_fault(
        &self,
        counter: &AtomicU64,
        map: &HashMap<u32, IoFaultKind>,
    ) -> Option<IoFaultKind> {
        let op = counter.fetch_add(1, Ordering::Relaxed);
        let kind = *map.get(&u32::try_from(op).ok()?)?;
        self.record(kind);
        Some(kind)
    }

    /// Advances the write-op counter; returns the armed fault for this
    /// write, if any ([`IoFaultKind::ShortWrite`] or
    /// [`IoFaultKind::WriteNoSpace`]).
    pub fn on_write(&self) -> Option<IoFaultKind> {
        self.next_fault(&self.write_ops, &self.write_faults)
    }

    /// Advances the read-op counter; `Err(EIO)` when this read is
    /// armed to fail.
    pub fn on_read(&self) -> io::Result<()> {
        match self.next_fault(&self.read_ops, &self.read_faults) {
            Some(_) => Err(injected_err(
                io::ErrorKind::Other,
                "injected read fault (EIO)",
            )),
            None => Ok(()),
        }
    }

    /// Advances the rename-op counter; `Err(EIO)` when this rename is
    /// armed to fail.
    pub fn on_rename(&self) -> io::Result<()> {
        match self.next_fault(&self.rename_ops, &self.rename_faults) {
            Some(_) => Err(injected_err(
                io::ErrorKind::Other,
                "injected rename fault (EIO)",
            )),
            None => Ok(()),
        }
    }

    /// Advances the fsync-op counter; `Err(EIO)` when this fsync is
    /// armed to fail.
    pub fn on_fsync(&self) -> io::Result<()> {
        match self.next_fault(&self.fsync_ops, &self.fsync_faults) {
            Some(_) => Err(injected_err(
                io::ErrorKind::Other,
                "injected fsync fault (EIO)",
            )),
            None => Ok(()),
        }
    }
}

fn injected_err(kind: io::ErrorKind, msg: &str) -> io::Error {
    io::Error::new(kind, msg.to_string())
}

/// The `ENOSPC`-shaped error injected write faults surface.
pub fn nospace_err() -> io::Error {
    injected_err(
        io::ErrorKind::Other, // StorageFull is unstable; message names it
        "injected write fault (ENOSPC)",
    )
}

/// The process-global fault state, armed from the `GRP_IOFAULT`
/// environment variable at first use (see the module docs for accepted
/// values). `None` — the common case — means every seam runs faults
/// off. Unit tests must *not* rely on this (it is process-wide and
/// read once); they pass explicit states through the `_with` seams.
pub fn global() -> Option<&'static Arc<IoFaultState>> {
    static GLOBAL: OnceLock<Option<Arc<IoFaultState>>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let spec = std::env::var("GRP_IOFAULT").ok()?;
            let spec = spec.trim();
            if spec.is_empty() {
                return None;
            }
            let st = state_from_spec(spec).unwrap_or_else(|e| {
                crate::telemetry::log::error("iofault", &e);
                std::process::exit(2);
            });
            crate::telemetry::log::info("iofault", &format!("armed GRP_IOFAULT={spec}"));
            Some(Arc::new(st))
        })
        .as_ref()
}

/// Parses a `GRP_IOFAULT` spec (builtin name, `seed:<u64>`, or
/// `torn-rename`) into a fault state.
///
/// # Errors
///
/// A descriptive message for an unknown name or unparsable seed.
pub fn state_from_spec(spec: &str) -> Result<IoFaultState, String> {
    if spec == "torn-rename" {
        return Ok(IoFaultState::torn_rename());
    }
    if let Some(seed) = spec.strip_prefix("seed:") {
        let seed = crate::args::parse_u64(seed)
            .ok_or_else(|| format!("GRP_IOFAULT: bad seed in {spec:?}"))?;
        return Ok(IoFaultState::new(&IoFaultPlan::generate(seed)));
    }
    for (name, plan) in IoFaultPlan::builtin() {
        if name == spec {
            return Ok(IoFaultState::new(&plan));
        }
    }
    let names: Vec<&str> = IoFaultPlan::builtin().iter().map(|(n, _)| *n).collect();
    Err(format!(
        "GRP_IOFAULT: unknown plan {spec:?} (expected one of {}, seed:<u64>, torn-rename)",
        names.join("/")
    ))
}

/// Whole-file read through the fault seam: an armed
/// [`IoFaultKind::ReadError`] surfaces as `EIO` without touching the
/// file. `faults: None` is plain [`std::fs::read`].
///
/// # Errors
///
/// The injected fault, or any real I/O error from the read.
pub fn read(faults: Option<&IoFaultState>, path: &Path) -> io::Result<Vec<u8>> {
    if let Some(f) = faults {
        f.on_read()?;
    }
    std::fs::read(path)
}

/// [`read`] returning UTF-8 text (the trajectory's framing).
///
/// # Errors
///
/// The injected fault, or any real I/O error from the read.
pub fn read_to_string(faults: Option<&IoFaultState>, path: &Path) -> io::Result<String> {
    if let Some(f) = faults {
        f.on_read()?;
    }
    std::fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Registry;

    #[test]
    fn generate_is_deterministic() {
        let a = IoFaultPlan::generate(0x5eed_10fa);
        let b = IoFaultPlan::generate(0x5eed_10fa);
        assert_eq!(a, b);
        let plans: Vec<IoFaultPlan> =
            (0..16).map(|i| IoFaultPlan::generate(0x5eed_10f0 + i)).collect();
        assert!(plans.iter().any(|p| !p.is_empty()));
        assert!(plans.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn empty_plan_state_is_inert() {
        let st = IoFaultState::new(&IoFaultPlan::none());
        for _ in 0..32 {
            assert!(st.on_write().is_none());
            st.on_read().expect("reads pass");
            st.on_rename().expect("renames pass");
            st.on_fsync().expect("fsyncs pass");
        }
        assert_eq!(st.injected(), 0);
    }

    #[test]
    fn faults_fire_at_their_op_index_once() {
        let reg = Registry::new();
        let plan = IoFaultPlan::new(vec![
            IoFaultEvent {
                op: 1,
                kind: IoFaultKind::WriteNoSpace,
            },
            IoFaultEvent {
                op: 0,
                kind: IoFaultKind::ReadError,
            },
        ]);
        let st = IoFaultState::new(&plan).with_shard(reg.shard());
        assert!(st.on_write().is_none(), "op 0 passes");
        assert_eq!(st.on_write(), Some(IoFaultKind::WriteNoSpace), "op 1 fails");
        assert!(st.on_write().is_none(), "op 2 passes");
        assert!(st.on_read().is_err(), "read op 0 fails");
        assert!(st.on_read().is_ok(), "read op 1 passes");
        assert_eq!(st.injected(), 2);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("grp_iofault_injected_total{kind=\"write_nospace\"}"),
            1
        );
        assert_eq!(snap.counter("grp_iofault_injected_total{kind=\"read_eio\"}"), 1);
    }

    #[test]
    fn builtin_plans_cover_every_fault_kind() {
        let plans = IoFaultPlan::builtin();
        assert!(plans.len() >= 6);
        let all: Vec<IoFaultKind> = plans
            .iter()
            .flat_map(|(_, p)| p.events.iter().map(|e| e.kind))
            .collect();
        for kind in [
            IoFaultKind::ShortWrite,
            IoFaultKind::WriteNoSpace,
            IoFaultKind::ReadError,
            IoFaultKind::RenameFail,
            IoFaultKind::FsyncFail,
        ] {
            assert!(all.contains(&kind), "{kind:?} covered by a builtin plan");
        }
    }

    #[test]
    fn shrinking_reaches_the_empty_plan() {
        let plan = IoFaultPlan::new(vec![
            IoFaultEvent {
                op: 4,
                kind: IoFaultKind::FsyncFail,
            },
            IoFaultEvent {
                op: 2,
                kind: IoFaultKind::ShortWrite,
            },
        ]);
        let shrinks = plan.shrink_value();
        assert_eq!(shrinks[0], IoFaultPlan::none(), "empty plan offered first");
        assert!(shrinks.len() > 1);
    }

    #[test]
    fn spec_parsing_accepts_names_seeds_and_teeth() {
        assert!(state_from_spec("io-storm").is_ok());
        assert!(state_from_spec("short-write").is_ok());
        let st = state_from_spec("torn-rename").expect("teeth spec");
        assert!(st.is_torn_rename());
        assert!(state_from_spec("seed:0x5eed").is_ok());
        assert!(state_from_spec("seed:notanumber").is_err());
        assert!(state_from_spec("no-such-plan").is_err());
    }
}

//! Regenerates Figure 10: integer-benchmark IPC per scheme.
use grp_bench::{experiments, suite::scale_from_args, Suite};
use grp_workloads::BenchClass;

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    print!("{}", experiments::figure_perf(&mut suite, BenchClass::Int));
    print!("{}", experiments::figure_perf(&mut suite, BenchClass::App));
}

//! Regenerates the §5.5 bandwidth sensitivity study (art is bandwidth
//! bound; wider channels pay).
use grp_bench::{experiments, suite::scale_from_args};

fn main() {
    print!("{}", experiments::bandwidth_study(scale_from_args()));
}

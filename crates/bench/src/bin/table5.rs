//! Regenerates Table 5: accuracy, coverage, and traffic per benchmark.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    print!("{}", experiments::table5(&mut suite));
}

//! Regenerates Table 6: remaining L2 miss characteristics under GRP.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    print!("{}", experiments::table6(&mut suite));
}

//! Prefetch-lifecycle trace exporter. Runs one benchmark under one
//! scheme with the observer layer enabled and writes three artifacts:
//!
//! * `<prefix>.jsonl` — one JSON object per tracked prefetch (full
//!   lifecycle timestamps and final outcome);
//! * `<prefix>.trace.json` — Chrome trace-event JSON (load into
//!   Perfetto / `chrome://tracing`): DRAM channel lanes, prefetch-queue
//!   slots, L2 MSHR file, plus epoch counters;
//! * `<prefix>.metrics.json` — lifecycle summary, timeliness
//!   histograms, and the epoch metrics time-series.
//!
//! Every run self-verifies: the trace-derived counters must reproduce
//! the simulator's own `RunResult` counters (accuracy and coverage to
//! the bit), and the lifecycle conservation identity must hold — the
//! process exits nonzero otherwise.
//!
//! Usage:
//!   `cargo run -p grp-bench --bin trace -- <bench> [--scheme <label>]
//!    [--scale test|small|paper] [--trace-out <prefix>]
//!    [--metrics-out <path>] [--epoch N]`
//!   `cargo run -p grp-bench --bin trace -- --check <prefix>`
use grp_bench::json::Json;
use grp_bench::obs_export::{chrome_trace, flag_u64, flag_value, metrics_json, slug};
use grp_bench::suite::parse_scale_args;
use grp_bench::telemetry::log;
use grp_core::{EpochSampler, LifecycleTracer, ObserverPair, RunResult, Scheme, SimConfig};
use grp_workloads::by_name;

fn fail(msg: &str) -> ! {
    log::error("trace", msg);
    std::process::exit(1)
}

fn scheme_from_label(label: &str) -> Scheme {
    let want = slug(label);
    Scheme::ALL
        .into_iter()
        .find(|s| slug(s.label()) == want)
        .unwrap_or_else(|| {
            let all: Vec<_> = Scheme::ALL.iter().map(|s| s.label()).collect();
            fail(&format!("unknown scheme '{label}' (valid: {})", all.join(", ")))
        })
}

/// Compares one trace-derived counter against the simulator's; returns
/// whether they matched.
fn check_eq(failures: &mut Vec<String>, what: &str, tracer: u64, sim: u64) {
    if tracer != sim {
        failures.push(format!("{what}: tracer {tracer} != simulator {sim}"));
    }
}

fn verify_against(tracer: &LifecycleTracer, r: &RunResult, base: &RunResult) -> Vec<String> {
    let mut f = Vec::new();
    check_eq(&mut f, "prefetches issued", tracer.issued(), r.prefetches_issued);
    check_eq(&mut f, "first uses", tracer.first_used(), r.l2.useful_prefetches);
    check_eq(&mut f, "unused evictions", tracer.evicted_unused(), r.l2.useless_prefetches);
    check_eq(&mut f, "resident at end", tracer.resident_at_end(), r.resident_unused_prefetches);
    check_eq(&mut f, "late merges", tracer.late(), r.late_prefetch_merges);
    check_eq(&mut f, "demand misses", tracer.demand_misses(), r.l2.demand_misses);
    let conserved = tracer.first_used()
        + tracer.late()
        + tracer.evicted_unused()
        + tracer.resident_at_end()
        + tracer.in_flight_at_end()
        + tracer.dropped();
    if tracer.issued() != conserved {
        f.push(format!(
            "conservation: issued {} != accounted {conserved}",
            tracer.issued()
        ));
    }
    if tracer.accuracy().to_bits() != r.accuracy().to_bits() {
        f.push(format!(
            "accuracy: tracer {} != simulator {}",
            tracer.accuracy(),
            r.accuracy()
        ));
    }
    let cov = tracer.coverage_vs_misses(base.l2_misses());
    if cov.to_bits() != r.coverage_vs(base).to_bits() {
        f.push(format!("coverage: tracer {cov} != simulator {}", r.coverage_vs(base)));
    }
    f
}

/// Re-parses previously written artifacts with the in-tree JSON reader
/// and re-asserts conservation from the raw per-record outcomes.
fn check_artifacts(prefix: &str) {
    let jsonl = std::fs::read_to_string(format!("{prefix}.jsonl"))
        .unwrap_or_else(|e| fail(&format!("read {prefix}.jsonl: {e}")));
    let mut issued = 0u64;
    let mut accounted = 0u64;
    let mut records = 0u64;
    for (i, line) in jsonl.lines().enumerate() {
        let rec = Json::parse(line)
            .unwrap_or_else(|e| fail(&format!("{prefix}.jsonl line {}: {e}", i + 1)));
        records += 1;
        if rec.get("issued").map(|v| v.as_u64().is_some()).unwrap_or(false) {
            issued += 1;
        }
        let outcome = rec
            .get("outcome")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("{prefix}.jsonl line {}: no outcome", i + 1)));
        if matches!(
            outcome,
            "first_use" | "late" | "evicted_unused" | "resident_at_end" | "in_flight_at_end"
                | "dropped"
        ) {
            accounted += 1;
        }
    }
    if issued != accounted {
        fail(&format!(
            "{prefix}.jsonl: conservation violated — {issued} issued but {accounted} accounted"
        ));
    }
    let metrics = std::fs::read_to_string(format!("{prefix}.metrics.json"))
        .unwrap_or_else(|e| fail(&format!("read {prefix}.metrics.json: {e}")));
    let metrics = Json::parse(&metrics).unwrap_or_else(|e| fail(&format!("{prefix}.metrics.json: {e}")));
    let summary = metrics.get("summary").unwrap_or_else(|| fail("metrics: no summary"));
    let sum_issued = summary.get("issued").and_then(Json::as_u64).unwrap_or(0);
    if sum_issued != issued {
        fail(&format!(
            "metrics summary issued {sum_issued} disagrees with jsonl {issued}"
        ));
    }
    if summary.get("records").and_then(Json::as_u64) != Some(records) {
        fail("metrics summary record count disagrees with jsonl");
    }
    let trace = std::fs::read_to_string(format!("{prefix}.trace.json"))
        .unwrap_or_else(|e| fail(&format!("read {prefix}.trace.json: {e}")));
    let trace = Json::parse(&trace).unwrap_or_else(|e| fail(&format!("{prefix}.trace.json: {e}")));
    let n = trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("trace.json: no traceEvents array"))
        .len();
    println!(
        "check ok: {records} records, {issued} issued (conserved), {n} trace events"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(prefix) = flag_value(&args, "--check") {
        check_artifacts(&prefix);
        return;
    }
    let name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "gzip".into());
    let scheme = scheme_from_label(&flag_value(&args, "--scheme").unwrap_or_else(|| "GRP/Var".into()));
    let scale = parse_scale_args(&args).unwrap_or_else(|e| fail(&e));
    let epoch = flag_u64(&args, "--epoch").unwrap_or(4096);
    if epoch == 0 {
        fail("--epoch must be positive");
    }
    let prefix = flag_value(&args, "--trace-out")
        .unwrap_or_else(|| format!("target/trace/{}-{}", name, slug(scheme.label())));
    let metrics_path = flag_value(&args, "--metrics-out").unwrap_or_else(|| format!("{prefix}.metrics.json"));

    let wl = by_name(&name).unwrap_or_else(|| fail(&format!("unknown benchmark '{name}'")));
    let built = wl.build(scale.workload_scale());
    let cfg = SimConfig::paper();
    log::info("trace", &format!("running {name} / {} (baseline)…", Scheme::NoPrefetch));
    let base = built.run(Scheme::NoPrefetch, &cfg);
    log::info("trace", &format!("running {name} / {scheme} (traced, epoch={epoch})…"));
    let obs = ObserverPair(LifecycleTracer::new(), EpochSampler::new(epoch));
    let (r, obs) = built.run_observed(scheme, &cfg, obs);
    let ObserverPair(tracer, sampler) = obs;

    let failures = verify_against(&tracer, &r, &base);
    if !failures.is_empty() {
        for f in &failures {
            log::error("trace", &format!("self-check FAILED: {f}"));
        }
        std::process::exit(1);
    }

    // Atomic writes (stage + rename): a kill mid-export can't leave a
    // truncated artifact for --check to trip over.
    let epochs = sampler.snapshots();
    grp_bench::artifact::atomic_write(format!("{prefix}.jsonl"), tracer.jsonl())
        .unwrap_or_else(|e| fail(&format!("write {prefix}.jsonl: {e}")));
    grp_bench::artifact::atomic_write(
        format!("{prefix}.trace.json"),
        chrome_trace(&tracer, epochs).render(),
    )
    .unwrap_or_else(|e| fail(&format!("write {prefix}.trace.json: {e}")));
    grp_bench::artifact::atomic_write(&metrics_path, metrics_json(&tracer, epochs, Some(epoch)).render())
        .unwrap_or_else(|e| fail(&format!("write {metrics_path}: {e}")));

    println!(
        "{name} / {scheme}: {} records, {} issued, accuracy {:.3}, coverage {:.3}, {} epochs",
        tracer.records().len(),
        tracer.issued(),
        tracer.accuracy(),
        tracer.coverage_vs_misses(base.l2_misses()),
        epochs.len()
    );
    println!("  outcomes: first_use={} late={} evicted_unused={} resident={} in_flight={} squashed={} queued_at_end={} dropped={}",
        tracer.first_used(), tracer.late(), tracer.evicted_unused(),
        tracer.resident_at_end(), tracer.in_flight_at_end(), tracer.squashed(),
        tracer.queued_at_end(), tracer.dropped());
    println!("  queue residency: {}", tracer.queue_residency());
    println!("  issue->fill:     {}", tracer.issue_to_fill());
    println!("  fill->first-use: {}", tracer.fill_to_use());
    println!("  self-check ok (trace counters match simulator, accuracy/coverage bit-exact)");
    println!("wrote {prefix}.jsonl, {prefix}.trace.json, {metrics_path}");
}

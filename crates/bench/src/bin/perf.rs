//! Perf-tracking harness: replays the workload registry and records
//! simulator throughput, appending one entry per run to the repo-root
//! `BENCH_perf.json` trajectory so hot-path optimizations can be
//! claimed against a recorded baseline.
//!
//! ```text
//! cargo run --release -p grp-bench --bin perf -- --scale small
//!     [--label <name>]      entry label (default "current")
//!     [--out <path>]        trajectory file (default BENCH_perf.json)
//!     [--schemes <csv>]     scheme labels (default none,stride,SRP,GRP/Var)
//!     [--no-write]          print the table, skip the JSON append
//! cargo run -p grp-bench --bin perf -- --check <path>
//!     validate an existing trajectory file and exit
//! ```
//!
//! Per (kernel × scheme) the harness builds the workload, derives the
//! scheme's hinted trace (setup, untimed in the headline metric), then
//! times `run_trace` alone — the trace-replay inner loop that bounds
//! every sweep — reporting trace events/sec and simulated cycles/sec.

use std::time::Instant;

use grp_bench::json::Json;
use grp_bench::suite::scale_from_args;
use grp_core::{run_trace, Scheme};
use grp_workloads::all;

/// Default scheme set: one representative of each engine hot path
/// (no engine, stride stream buffers, hint-blind regions, full GRP).
const DEFAULT_SCHEMES: [Scheme; 4] = [
    Scheme::NoPrefetch,
    Scheme::Stride,
    Scheme::Srp,
    Scheme::GrpVar,
];

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    grp_bench::obs_export::flag_value(args, flag)
}

fn scheme_by_label(label: &str) -> Option<Scheme> {
    Scheme::ALL.into_iter().find(|s| s.label() == label)
}

struct KernelRow {
    bench: &'static str,
    scheme: Scheme,
    events: u64,
    sim_cycles: u64,
    replay_seconds: f64,
}

impl KernelRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.replay_seconds.max(1e-9)
    }

    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.replay_seconds.max(1e-9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = arg_value(&args, "--check") {
        match check_trajectory(&path) {
            Ok(n) => {
                println!("{path}: OK ({n} entries)");
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let scale = scale_from_args();
    let label = arg_value(&args, "--label").unwrap_or_else(|| "current".to_string());
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let schemes: Vec<Scheme> = match arg_value(&args, "--schemes") {
        Some(csv) => csv
            .split(',')
            .map(|s| {
                scheme_by_label(s.trim()).unwrap_or_else(|| {
                    eprintln!(
                        "error: unknown scheme '{}' (valid: {})",
                        s.trim(),
                        Scheme::ALL.map(|x| x.label()).join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect(),
        None => DEFAULT_SCHEMES.to_vec(),
    };
    let write = !args.iter().any(|a| a == "--no-write");

    println!(
        "GRP perf harness — {:?} scale, schemes: {}",
        scale,
        schemes.iter().map(|s| s.label()).collect::<Vec<_>>().join(", ")
    );
    println!(
        "{:<10} {:<9} {:>12} {:>14} {:>10} {:>12}",
        "bench", "scheme", "events", "sim cycles", "replay s", "events/s"
    );

    let wall_start = Instant::now();
    let cfg = grp_core::SimConfig::paper();
    let mut rows: Vec<KernelRow> = Vec::new();
    let mut setup_seconds = 0.0f64;
    for w in all() {
        let t0 = Instant::now();
        let built = w.build(scale.workload_scale());
        setup_seconds += t0.elapsed().as_secs_f64();
        for &scheme in &schemes {
            let t1 = Instant::now();
            let cc = scheme.compiler_config();
            let (trace, mem) = built.trace(cc.as_ref());
            setup_seconds += t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            let result = run_trace(&trace, &mem, built.heap, scheme, &cfg);
            let replay_seconds = t2.elapsed().as_secs_f64();
            let row = KernelRow {
                bench: w.name,
                scheme,
                events: trace.events().len() as u64,
                sim_cycles: result.cycles,
                replay_seconds,
            };
            println!(
                "{:<10} {:<9} {:>12} {:>14} {:>10.3} {:>12.0}",
                row.bench,
                row.scheme.label(),
                row.events,
                row.sim_cycles,
                row.replay_seconds,
                row.events_per_sec()
            );
            rows.push(row);
        }
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    let events: u64 = rows.iter().map(|r| r.events).sum();
    let sim_cycles: u64 = rows.iter().map(|r| r.sim_cycles).sum();
    let replay_seconds: f64 = rows.iter().map(|r| r.replay_seconds).sum();
    let events_per_sec = events as f64 / replay_seconds.max(1e-9);
    let cycles_per_sec = sim_cycles as f64 / replay_seconds.max(1e-9);
    println!(
        "\ntotal: {events} events in {replay_seconds:.3}s replay \
         ({setup_seconds:.3}s setup, {wall_seconds:.3}s wall)"
    );
    println!("throughput: {events_per_sec:.0} events/s, {cycles_per_sec:.0} simulated cycles/s");

    if !write {
        return;
    }

    let entry = Json::object()
        .set("label", label.as_str())
        .set("scale", format!("{scale:?}").to_lowercase())
        .set(
            "schemes",
            Json::Array(schemes.iter().map(|s| Json::from(s.label())).collect()),
        )
        .set("wall_seconds", wall_seconds)
        .set("setup_seconds", setup_seconds)
        .set("replay_seconds", replay_seconds)
        .set("events", events)
        .set("sim_cycles", sim_cycles)
        .set("events_per_sec", events_per_sec)
        .set("sim_cycles_per_sec", cycles_per_sec)
        .set(
            "kernels",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object()
                            .set("bench", r.bench)
                            .set("scheme", r.scheme.label())
                            .set("events", r.events)
                            .set("sim_cycles", r.sim_cycles)
                            .set("replay_seconds", r.replay_seconds)
                            .set("events_per_sec", r.events_per_sec())
                            .set("sim_cycles_per_sec", r.cycles_per_sec())
                    })
                    .collect(),
            ),
        );

    let mut entries = match std::fs::read_to_string(&out) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc) => doc
                .get("entries")
                .and_then(|e| e.as_array())
                .map(|a| a.to_vec())
                .unwrap_or_else(|| {
                    eprintln!("error: {out} exists but has no 'entries' array");
                    std::process::exit(1);
                }),
            Err(e) => {
                eprintln!("error: {out} is not valid JSON ({e}); refusing to overwrite");
                std::process::exit(1);
            }
        },
        Err(_) => Vec::new(),
    };
    entries.push(entry);
    let doc = Json::object().set("version", 1u64).set("entries", Json::Array(entries));
    // Atomic append: stage + rename, so a kill mid-write can't truncate
    // the recorded trajectory.
    grp_bench::artifact::atomic_write(&out, doc.render()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("appended entry '{label}' to {out}");
}

/// Validates a trajectory file's structure, returning the entry count.
fn check_trajectory(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("malformed: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(|e| e.as_array())
        .ok_or("missing 'entries' array")?;
    if entries.is_empty() {
        return Err("no entries recorded".to_string());
    }
    for (i, e) in entries.iter().enumerate() {
        for key in ["label", "scale"] {
            e.get(key)
                .and_then(|v| v.as_str())
                .ok_or(format!("entry {i}: missing string '{key}'"))?;
        }
        for key in ["events_per_sec", "sim_cycles_per_sec", "replay_seconds"] {
            let v = e
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or(format!("entry {i}: missing number '{key}'"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("entry {i}: '{key}' is not positive"));
            }
        }
        let kernels = e
            .get("kernels")
            .and_then(|k| k.as_array())
            .ok_or(format!("entry {i}: missing 'kernels' array"))?;
        for (j, k) in kernels.iter().enumerate() {
            k.get("bench")
                .and_then(|v| v.as_str())
                .ok_or(format!("entry {i} kernel {j}: missing 'bench'"))?;
            k.get("scheme")
                .and_then(|v| v.as_str())
                .ok_or(format!("entry {i} kernel {j}: missing 'scheme'"))?;
            k.get("events_per_sec")
                .and_then(|v| v.as_f64())
                .ok_or(format!("entry {i} kernel {j}: missing 'events_per_sec'"))?;
        }
    }
    Ok(entries.len())
}

//! Perf-tracking harness: replays the workload registry and records
//! simulator throughput, appending one entry per run to the repo-root
//! `BENCH_perf.json` trajectory so hot-path optimizations can be
//! claimed against a recorded baseline.
//!
//! ```text
//! cargo run --release -p grp-bench --bin perf -- --scale small
//!     [--label <name>]      entry label (default "current")
//!     [--out <path>]        trajectory file (default BENCH_perf.json)
//!     [--schemes <csv>]     scheme labels (default none,stride,SRP,GRP/Var)
//!     [--no-write]          print the table, skip the JSON append
//!     [--packed]            replay through the packed struct-of-arrays
//!                           tier (bit-identical results; entry gains
//!                           "replay_tier": "packed")
//!     [--trace-cache <dir>] persist/reuse packed pre-interpreted
//!                           traces across processes (setup, not replay)
//!     [--profile]           enable the phase profiler: print a
//!                           build/interpret/pack/replay/export wall
//!                           breakdown, embed it in the entry under
//!                           "profile", and (serial mode) fail unless
//!                           the phases cover >= 95% of the wall clock
//! cargo run --release -p grp-bench --bin perf -- --fleet --scale small
//!     [--jobs N]            worker count (default: available parallelism)
//!     [--schemes <csv>]     scheme labels (default: all 12 — the full grid)
//!     [--stream-out <path>] stream per-cell rows to an artifact as
//!                           cells complete (crash leaves a valid partial)
//!     shard the kernel × scheme grid across workers at cell granularity
//!     via the work-stealing scheduler and append a fleet-shaped entry
//! cargo run -p grp-bench --bin perf -- --check <path>
//!     validate an existing trajectory file (both entry shapes) and exit
//! ```
//!
//! Per (kernel × scheme) the harness builds the workload, derives the
//! scheme's hinted trace (setup, untimed in the headline metric), then
//! times `run_trace` alone — the trace-replay inner loop that bounds
//! every sweep — reporting trace events/sec and simulated cycles/sec.
//! Fleet mode reports the same per-cell columns plus aggregate fleet
//! throughput (total events per *wall* second across all workers),
//! per-worker utilization, and queue-wait percentiles.

use std::time::Instant;

use grp_bench::args::{jobs_from_args, parse_replay_args, parse_schemes_args};
use grp_bench::json::Json;
use grp_bench::obs_export::flag_value;
use grp_bench::sched::{self, ReplayMode, WorkloadCache};
use grp_bench::suite::scale_from_args;
use grp_bench::telemetry::{self, log};
use grp_bench::traj;
use grp_core::Scheme;
use grp_workloads::all;

/// Default serial scheme set: one representative of each engine hot
/// path (no engine, stride stream buffers, hint-blind regions, full
/// GRP). Fleet mode defaults to the full 12-scheme grid instead.
const DEFAULT_SCHEMES: [Scheme; 4] = [
    Scheme::NoPrefetch,
    Scheme::Stride,
    Scheme::Srp,
    Scheme::GrpVar,
];

struct KernelRow {
    bench: &'static str,
    scheme: Scheme,
    events: u64,
    sim_cycles: u64,
    replay_seconds: f64,
    worker: Option<usize>,
}

impl KernelRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.replay_seconds.max(1e-9)
    }

    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.replay_seconds.max(1e-9)
    }

    fn json(&self) -> Json {
        let mut j = Json::object()
            .set("bench", self.bench)
            .set("scheme", self.scheme.label())
            .set("events", self.events)
            .set("sim_cycles", self.sim_cycles)
            .set("replay_seconds", self.replay_seconds)
            .set("events_per_sec", self.events_per_sec())
            .set("sim_cycles_per_sec", self.cycles_per_sec());
        if let Some(w) = self.worker {
            j = j.set("worker", w as u64);
        }
        j
    }

    fn print(&self) {
        println!(
            "{:<10} {:<9} {:>12} {:>14} {:>10.3} {:>12.0}{}",
            self.bench,
            self.scheme.label(),
            self.events,
            self.sim_cycles,
            self.replay_seconds,
            self.events_per_sec(),
            match self.worker {
                Some(w) => format!(" {w:>3}"),
                None => String::new(),
            }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = flag_value(&args, "--check") {
        match traj::check_trajectory(&path) {
            Ok(n) => {
                println!("{path}: OK ({n} entries)");
            }
            Err(e) => {
                log::error("perf", &format!("{path}: {e}"));
                std::process::exit(1);
            }
        }
        return;
    }

    let usage_err = |e: String| -> ! {
        log::error("perf", &e);
        std::process::exit(2);
    };
    log::init_from_args(&args).unwrap_or_else(|e| usage_err(e));
    let fleet = grp_bench::args::strict_flag(&args, "--fleet").unwrap_or_else(|e| usage_err(e));
    let profile =
        grp_bench::args::strict_flag(&args, "--profile").unwrap_or_else(|e| usage_err(e));
    let scale = scale_from_args();
    let label = flag_value(&args, "--label")
        .unwrap_or_else(|| if fleet { "fleet".to_string() } else { "current".to_string() });
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_perf.json".to_string());
    let schemes: Vec<Scheme> = parse_schemes_args(&args)
        .unwrap_or_else(|e| usage_err(e))
        .unwrap_or_else(|| {
            if fleet {
                Scheme::ALL.to_vec()
            } else {
                DEFAULT_SCHEMES.to_vec()
            }
        });
    let write = !args.iter().any(|a| a == "--no-write");
    let mode = parse_replay_args(&args).unwrap_or_else(|e| usage_err(e));

    let wall_start = Instant::now();
    if profile {
        telemetry::profiler().set_enabled(true);
    }

    println!(
        "GRP perf harness — {:?} scale, {} {} replay, schemes: {}",
        scale,
        if fleet { "fleet mode," } else { "serial," },
        if mode.packed { "packed" } else { "materialized" },
        schemes.iter().map(|s| s.label()).collect::<Vec<_>>().join(", ")
    );
    println!(
        "{:<10} {:<9} {:>12} {:>14} {:>10} {:>12}{}",
        "bench", "scheme", "events", "sim cycles", "replay s", "events/s",
        if fleet { "   w" } else { "" }
    );

    let entry = if fleet {
        run_fleet(scale, &label, &schemes, &mode, &args)
    } else {
        run_serial(scale, &label, &schemes, &mode)
    };
    let mut entry = entry.set(
        "replay_tier",
        if mode.packed { "packed" } else { "materialized" },
    );

    if profile {
        let wall = wall_start.elapsed().as_secs_f64();
        let report = telemetry::profiler().report();
        entry = entry.set("profile", report.to_json(wall));
        let coverage = print_profile(&report, wall);
        // The coverage gate only holds serially: fleet workers' summed
        // busy time legitimately exceeds one wall clock.
        if !fleet && coverage < 0.95 {
            log::error(
                "perf",
                &format!(
                    "profile coverage {:.1}% < 95% — phases do not account for the wall clock",
                    100.0 * coverage
                ),
            );
            std::process::exit(1);
        }
    }

    if !write {
        return;
    }
    traj::append_entry(&out, entry).unwrap_or_else(|e| {
        log::error("perf", &e.to_string());
        std::process::exit(1);
    });
    println!("appended entry '{label}' to {out}");
}

/// Prints the phase-attributed wall breakdown and returns coverage
/// (top-level span seconds / measured wall seconds).
fn print_profile(report: &grp_bench::telemetry::profiler::ProfileReport, wall: f64) -> f64 {
    let covered = report.covered_seconds();
    let coverage = covered / wall.max(1e-9);
    println!("\nprofile: phase breakdown ({:.3}s wall)", wall);
    for (phase, stat) in report.phase_totals() {
        println!(
            "  {:<12} {:>9.3}s  {:>5.1}%  ({} span{})",
            phase,
            stat.seconds,
            100.0 * stat.seconds / wall.max(1e-9),
            stat.count,
            if stat.count == 1 { "" } else { "s" }
        );
    }
    println!("  covered: {covered:.3}s of {wall:.3}s wall ({:.1}%)", 100.0 * coverage);
    coverage
}

/// The original single-thread harness: build → trace → timed replay,
/// one cell at a time, on the calling thread. Under `--packed` /
/// `--trace-cache` the per-cell body goes through
/// [`sched::run_cell`]: packing (or a cache hit) counts as setup, the
/// replay column times the replay loop alone in both tiers.
fn run_serial(
    scale: grp_bench::SuiteScale,
    label: &str,
    schemes: &[Scheme],
    mode: &ReplayMode,
) -> Json {
    let wall_start = Instant::now();
    let cfg = grp_core::SimConfig::paper();
    let mut rows: Vec<KernelRow> = Vec::new();
    let mut setup_seconds = 0.0f64;
    let cache = WorkloadCache::new();
    for w in all() {
        for &scheme in schemes {
            let (result, events, setup, replay) =
                sched::run_cell(w.name, scale.workload_scale(), scheme, &cfg, mode, || {
                    cache.get_or_build(w.name, scale.workload_scale())
                })
                .unwrap_or_else(|e| {
                    log::error("perf", &e.to_string());
                    std::process::exit(1);
                });
            setup_seconds += setup;
            let row = KernelRow {
                bench: w.name,
                scheme,
                events,
                sim_cycles: result.cycles,
                replay_seconds: replay,
                worker: None,
            };
            row.print();
            rows.push(row);
        }
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    // Summary + entry construction is the export phase (no-op span
    // unless --profile enabled the profiler).
    let _export = telemetry::profiler().span("export");

    let events: u64 = rows.iter().map(|r| r.events).sum();
    let sim_cycles: u64 = rows.iter().map(|r| r.sim_cycles).sum();
    let replay_seconds: f64 = rows.iter().map(|r| r.replay_seconds).sum();
    let events_per_sec = events as f64 / replay_seconds.max(1e-9);
    let cycles_per_sec = sim_cycles as f64 / replay_seconds.max(1e-9);
    println!(
        "\ntotal: {events} events in {replay_seconds:.3}s replay \
         ({setup_seconds:.3}s setup, {wall_seconds:.3}s wall)"
    );
    println!("throughput: {events_per_sec:.0} events/s, {cycles_per_sec:.0} simulated cycles/s");

    Json::object()
        .set("label", label)
        .set("scale", format!("{scale:?}").to_lowercase())
        .set(
            "schemes",
            Json::Array(schemes.iter().map(|s| Json::from(s.label())).collect()),
        )
        .set("wall_seconds", wall_seconds)
        .set("setup_seconds", setup_seconds)
        .set("replay_seconds", replay_seconds)
        .set("events", events)
        .set("sim_cycles", sim_cycles)
        .set("events_per_sec", events_per_sec)
        .set("sim_cycles_per_sec", cycles_per_sec)
        .set("kernels", Json::Array(rows.iter().map(|r| r.json()).collect()))
}

/// Fleet mode: shard the kernel × scheme grid across workers through
/// the work-stealing cell scheduler, streaming rows (and optionally a
/// partial-results artifact) as cells complete.
fn run_fleet(
    scale: grp_bench::SuiteScale,
    label: &str,
    schemes: &[Scheme],
    mode: &ReplayMode,
    args: &[String],
) -> Json {
    let workers = jobs_from_args().unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    });
    let stream_out = flag_value(args, "--stream-out");
    let names: Vec<&'static str> = all().iter().map(|w| w.name).collect();
    let cfg = grp_core::SimConfig::paper();
    let jobs = sched::grid_jobs(&names, schemes, scale.workload_scale(), cfg);
    let total = jobs.len();
    let cache = WorkloadCache::new();

    let mut rows: Vec<KernelRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let stats = sched::run_cells_mode(&jobs, workers, &cache, mode, |cell| {
        match &cell.outcome {
            Ok(r) => {
                let row = KernelRow {
                    bench: cell.kernel,
                    scheme: cell.scheme,
                    events: cell.events,
                    sim_cycles: r.cycles,
                    replay_seconds: cell.replay_seconds,
                    worker: Some(cell.worker),
                };
                row.print();
                rows.push(row);
            }
            Err(e) => failures.push(format!("{}/{}: {e}", cell.kernel, cell.scheme)),
        }
        // Stream the partial grid through the atomic-write layer: a
        // crash mid-run leaves a complete, parseable prefix artifact
        // rather than nothing (or a torn file) at end-of-run.
        if let Some(path) = &stream_out {
            let doc = Json::object()
                .set("complete", rows.len() as u64)
                .set("total", total as u64)
                .set("cells", Json::Array(rows.iter().map(|r| r.json()).collect()));
            grp_bench::artifact::atomic_write(path, doc.render()).unwrap_or_else(|e| {
                log::error("perf", &format!("cannot stream to {path}: {e}"));
                std::process::exit(1);
            });
        }
    });
    if !failures.is_empty() {
        log::error(
            "perf",
            &format!("{} cell(s) failed: {}", failures.len(), failures.join("; ")),
        );
        std::process::exit(1);
    }
    let _export = telemetry::profiler().span("export");

    let q = &stats.queue_wait_micros;
    println!(
        "\nfleet: {} cells on {} workers in {:.3}s wall ({} steals, {} built workloads)",
        stats.cells,
        stats.workers,
        stats.wall_seconds,
        stats.steals,
        cache.built_count(),
    );
    for w in 0..stats.workers {
        println!(
            "  worker {w}: {} cells, {:.3}s busy, {:.0}% utilized",
            stats.cells_per_worker[w],
            stats.busy_seconds[w],
            100.0 * stats.utilization(w)
        );
    }
    println!(
        "queue wait: p50={}us p90={}us p99={}us max={}us",
        q.percentile(0.50),
        q.percentile(0.90),
        q.percentile(0.99),
        q.max()
    );
    println!(
        "aggregate: {:.0} events/s across the fleet ({:.0} events/s per busy replay second)",
        stats.events_per_sec(),
        stats.events as f64 / stats.replay_seconds.max(1e-9),
    );

    let scheme_labels: Vec<&str> = schemes.iter().map(|s| s.label()).collect();
    // Sort rows grid-order for a byte-stable artifact regardless of
    // completion order (the streamed partials stay completion-ordered).
    rows.sort_by_key(|r| {
        (
            names.iter().position(|n| *n == r.bench).unwrap_or(usize::MAX),
            schemes.iter().position(|s| *s == r.scheme).unwrap_or(usize::MAX),
        )
    });
    traj::fleet_entry(
        label,
        &format!("{scale:?}").to_lowercase(),
        &scheme_labels,
        &stats,
        rows.iter().map(|r| r.json()).collect(),
    )
}

//! Prints per-reference hint diagnostics for one benchmark: the
//! syntactic shape, per-loop byte strides, and the derived hints.
//! `cargo run -p grp-bench --bin explain -- <bench> [--scale …]`
use grp_bench::suite::scale_from_args;
use grp_bench::telemetry::log;
use grp_compiler::{analyze, explain, AnalysisConfig};
use grp_workloads::by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "mcf".into());
    let Some(wl) = by_name(&name) else {
        log::error("explain", &format!("unknown benchmark `{name}`"));
        std::process::exit(1);
    };
    let built = wl.build(scale_from_args().workload_scale());
    let hints = analyze(&built.program, &AnalysisConfig::default());
    println!("{name}: {}\n", wl.description);
    for e in explain(&built.program, &hints) {
        println!("{}", e.line());
    }
}

//! Regenerates the §5.4 compiler-policy sensitivity study.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    print!("{}", experiments::sensitivity(&mut suite));
}

//! Correctness gate: differential oracle + seeded invariant fuzzing.
//!
//! Two phases, both offline and fully deterministic:
//!
//! 1. **Kernel differential** — replays every registry benchmark at the
//!    chosen scale under no-prefetch through both the optimized
//!    [`MemSystem`](grp_core::MemSystem) and the naive reference oracle,
//!    asserting event-for-event agreement (hit/miss class, completion
//!    cycle, final cache contents, traffic).
//! 1b. **Region pressure** — one fixed case of sparse single-miss
//!    regions saturating the engine queue, run through every scheme
//!    with invariants; this makes the unbounded-queue injection
//!    deterministically detectable.
//! 2. **Seeded fuzzing** — generates `--cases` random access traces
//!    (spatial / pointer / indirect / aliasing / store idioms, see
//!    [`grp_bench::fuzz`]), differentially validates each against the
//!    oracle, then runs each through *every* scheme with the full
//!    [`InvariantObserver`] attached (lifecycle conservation, occupancy
//!    bounds, structural walks). A failing case is greedily shrunk to a
//!    minimal plan before reporting.
//!
//! ```text
//! cargo run --release -p grp-bench --bin check -- \
//!     [--cases N] [--seed S] [--scale test|small|paper] \
//!     [--inject none|mru-evict|unbounded-queue]
//! ```
//!
//! `--inject` plants a deliberate bug (an evict-MRU replacement fault
//! or an unbounded engine queue) so CI can assert the gate still has
//! teeth: an injected run must exit nonzero.

use grp_bench::args::{strict_u64, strict_value};
use grp_bench::fuzz::{materialize, FuzzPlan};
use grp_bench::suite::parse_scale_args;
use grp_core::{
    differential_check, engine_for, run_trace_with_engine_observed, InvariantObserver,
    OracleFault, Scheme, SimConfig,
};
use grp_testkit::proptest::{any, greedy_shrink};
use grp_testkit::proptest::Arbitrary;
use grp_testkit::Rng;

/// Which deliberate bug to plant (`--inject`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Inject {
    None,
    /// Caches evict the MRU way instead of LRU — caught by the oracle
    /// differential (wrong victims ⇒ diverging hit/miss stream).
    MruEvict,
    /// The region engine stops bounding its queue — caught by the
    /// invariant observer's occupancy checks.
    UnboundedQueue,
}

impl Inject {
    fn parse(s: &str) -> Option<Inject> {
        match s {
            "none" => Some(Inject::None),
            "mru-evict" => Some(Inject::MruEvict),
            "unbounded-queue" => Some(Inject::UnboundedQueue),
            _ => None,
        }
    }

    fn oracle_fault(self) -> OracleFault {
        if self == Inject::MruEvict {
            OracleFault::EvictMru
        } else {
            OracleFault::None
        }
    }
}

/// Runs one materialized case through the differential oracle and
/// every scheme with invariants attached. First failure wins.
fn check_case(case: &grp_bench::fuzz::FuzzCase, cfg: &SimConfig, inject: Inject) -> Result<(), String> {
    differential_check(&case.trace, &case.mem, case.heap, cfg, inject.oracle_fault())
        .map_err(|e| format!("oracle differential (no-prefetch): {e}"))?;
    for scheme in Scheme::ALL {
        let mut engine = engine_for(scheme, cfg);
        if inject == Inject::UnboundedQueue {
            engine.inject_fault_unbounded_queue();
        }
        let obs = InvariantObserver::new(cfg).with_interval(256);
        let (_, obs) = run_trace_with_engine_observed(
            &case.trace,
            &case.mem,
            case.heap,
            scheme,
            cfg,
            engine,
            obs,
        );
        if !obs.ok() {
            return Err(format!(
                "invariants under {scheme:?} ({} violations): {}",
                obs.total_violations(),
                obs.violations().join("; ")
            ));
        }
    }
    Ok(())
}

/// [`check_case`] on a freshly materialized plan — the shape the
/// shrinker minimizes over.
fn check_plan(plan: &FuzzPlan, cfg: &SimConfig, inject: Inject) -> Result<(), String> {
    check_case(&materialize(plan), cfg, inject)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage_err = |e: String| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };
    let scale = parse_scale_args(&args).unwrap_or_else(|e| usage_err(e));
    let cases = strict_u64(&args, "--cases", "a case count")
        .unwrap_or_else(|e| usage_err(e))
        .unwrap_or(64);
    let seed = strict_u64(&args, "--seed", "a 64-bit seed")
        .unwrap_or_else(|e| usage_err(e))
        .unwrap_or(0x5eed_c4ec_0000_0000);
    let inject = match strict_value(&args, "--inject", "none, mru-evict, unbounded-queue")
        .unwrap_or_else(|e| usage_err(e))
    {
        None => Inject::None,
        Some(s) => Inject::parse(&s).unwrap_or_else(|| {
            usage_err(format!(
                "unknown injection '{s}' (valid: none, mru-evict, unbounded-queue)"
            ))
        }),
    };

    let cfg = SimConfig::paper();
    let mut failures = 0u64;

    // Phase 1: kernel differential against the reference oracle.
    let names: Vec<&'static str> = grp_workloads::all().iter().map(|w| w.name).collect();
    println!(
        "phase 1: oracle differential on {} kernels ({:?} scale, inject: {inject:?})",
        names.len(),
        scale
    );
    for name in &names {
        let built = grp_workloads::by_name(name)
            .expect("registered")
            .build(scale.workload_scale());
        let (trace, mem) = built.trace(None);
        match differential_check(&trace, &mem, built.heap, &cfg, inject.oracle_fault()) {
            Ok(rep) => println!("  {name}: OK ({} accesses, {} cycles)", rep.accesses, rep.cycles),
            Err(e) => {
                failures += 1;
                println!("  {name}: DIVERGED\n    {e}");
            }
        }
    }

    // Phase 1b: a fixed region-pressure case no random plan reaches —
    // thousands of single-miss regions saturating the engine queue.
    // This is what makes the unbounded-queue injection deterministic.
    match check_case(&grp_bench::fuzz::region_pressure_case(), &cfg, inject) {
        Ok(()) => println!("  region-pressure: OK"),
        Err(e) => {
            failures += 1;
            println!("  region-pressure: FAILED\n    {e}");
        }
    }

    // Phase 2: seeded fuzzing through every scheme with invariants.
    println!(
        "phase 2: {cases} fuzz cases x {} schemes (base seed {seed:#x})",
        Scheme::ALL.len()
    );
    let strat = any::<FuzzPlan>();
    for case_idx in 0..cases {
        let case_seed = seed.wrapping_add(case_idx);
        let plan = FuzzPlan::arbitrary(&mut Rng::seed_from_u64(case_seed));
        let Err(first_msg) = check_plan(&plan, &cfg, inject) else {
            continue;
        };
        failures += 1;
        let (min_plan, msg, steps) = greedy_shrink(&strat, plan, first_msg, 512, |p| {
            check_plan(p, &cfg, inject)
        });
        println!(
            "  case {case_idx} (seed {case_seed:#x}): FAILED\n    {msg}\n    \
             minimal plan after {steps} shrink steps: {min_plan:?}\n    \
             reproduce: --bin check -- --cases 1 --seed {case_seed:#x}"
        );
    }

    if failures > 0 {
        println!("check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!(
        "check: all kernels agree with the oracle; {cases} fuzz cases clean across {} schemes",
        Scheme::ALL.len()
    );
}

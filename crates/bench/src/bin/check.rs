//! Correctness gate: differential oracle + seeded invariant fuzzing.
//!
//! Phases, all offline and fully deterministic:
//!
//! 1. **Kernel differential** — replays every registry benchmark at the
//!    chosen scale under no-prefetch through both the optimized
//!    [`MemSystem`](grp_core::MemSystem) and the naive reference oracle,
//!    asserting event-for-event agreement (hit/miss class, completion
//!    cycle, final cache contents, traffic).
//! 1b. **Region pressure** — one fixed case of sparse single-miss
//!    regions saturating the engine queue, run through every scheme
//!    with invariants; this makes the unbounded-queue injection
//!    deterministically detectable.
//! 2. **Seeded fuzzing** — generates `--cases` random access traces
//!    (spatial / pointer / indirect / aliasing / store idioms, see
//!    [`grp_bench::fuzz`]), differentially validates each against the
//!    oracle, then runs each through *every* scheme with the full
//!    [`InvariantObserver`] attached (lifecycle conservation, occupancy
//!    bounds, structural walks). A failing case is greedily shrunk to a
//!    minimal plan before reporting.
//! 3. **Fault-plan sweep** (`--faults`) — every built-in
//!    [`FaultPlan`] (channel stalls, outages, delayed/dropped fills,
//!    MSHR squeeze, queue pressure) armed on a fixed prefetch-heavy
//!    workout case: the faulted run must pass the no-prefetch oracle
//!    differential with the same plan armed on both systems, keep every
//!    invariant (lifecycle conservation gains dropped/delayed legs —
//!    never waived under faults), never panic, and an empty plan must
//!    be bit-identical to the unfaulted run.
//! 4. **Faulted fuzzing** (`--faults`) — phase 2's fuzzing over
//!    `(access plan, fault plan)` *pairs*; a failing pair shrinks as a
//!    pair, with the empty fault plan offered first so a bug that
//!    doesn't need the fault sheds it immediately.
//!
//! Every simulated run is also checked against a cycle-budget watchdog
//! (`--max-cycles`, 0 disables): a run that blows the budget is treated
//! exactly like an invariant failure, including shrinking.
//!
//! ```text
//! cargo run --release -p grp-bench --bin check -- \
//!     [--cases N] [--seed S] [--scale test|small|paper] [--faults] \
//!     [--max-cycles N] [--inject none|mru-evict|unbounded-queue|drop-leak] \
//!     [--packed] [--trace-cache <dir>]
//! cargo run -p grp-bench --bin check -- --metrics <path> \
//!     [--metrics-prev <path>] [--metrics-require <fam1,fam2,…>]
//!     re-parse and validate a Prometheus text exposition written by
//!     `serve --metrics-out` / `perf`: declared families, histogram
//!     bucket invariants, optionally required families, and counter
//!     monotonicity against an earlier scrape — then exit
//! cargo run --release -p grp-bench --bin check -- --chaos \
//!     [--seed S] [--chaos-rounds N] [--chaos-dir <dir>] \
//!     [--inject torn-rename]
//!     crash-only gate: drives the real serve binary through seeded
//!     I/O-fault storms, mid-batch disconnects, and a kill -9 during a
//!     cache write, then restarts it — asserting no torn artifact,
//!     monotone counters, and bit-identical re-issued replies (see
//!     [`grp_bench::chaos`]); `--inject torn-rename` plants deliberate
//!     torn publishes so CI can prove the gate still has teeth
//! ```
//!
//! `--packed` prepends **phase 0**: every registry kernel × every
//! scheme is replayed through both the materialized path and the
//! packed struct-of-arrays tier (optionally through `--trace-cache`),
//! asserting bit-identical `RunResult`s — the cross-tier determinism
//! gate at the chosen scale.
//!
//! `--inject` plants a deliberate bug (an evict-MRU replacement fault,
//! an unbounded engine queue, or a dropped-fill MSHR leak) so CI can
//! assert the gate still has teeth: an injected run must exit nonzero.

use std::panic::{catch_unwind, AssertUnwindSafe};

use grp_bench::args::{strict_flag, strict_u64, strict_value};
use grp_bench::fuzz::{materialize, FuzzPlan, Segment};
use grp_bench::suite::parse_scale_args;
use grp_bench::telemetry::{self, exposition, log, TelemetryObserver};
use grp_core::{
    differential_check, differential_check_faulted, engine_for, replay_injected, run_trace,
    run_trace_faulted, run_trace_observed_faulted, FaultPlan, InvariantObserver, OracleFault,
    Scheme, SimConfig,
};
use grp_testkit::proptest::{any, greedy_shrink};
use grp_testkit::proptest::Arbitrary;
use grp_testkit::Rng;

/// Default cycle-budget watchdog: far above any legal test-scale run,
/// low enough to catch a hung or runaway simulation in CI.
const DEFAULT_MAX_CYCLES: u64 = 500_000_000;

/// Which deliberate bug to plant (`--inject`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Inject {
    None,
    /// Caches evict the MRU way instead of LRU — caught by the oracle
    /// differential (wrong victims ⇒ diverging hit/miss stream).
    MruEvict,
    /// The region engine stops bounding its queue — caught by the
    /// invariant observer's occupancy checks.
    UnboundedQueue,
    /// Dropped prefetch fills leak their L2 MSHR entry instead of
    /// releasing it — caught by lifecycle conservation (the dropped leg
    /// never closes). Only reachable under a fault plan that drops
    /// fills, so this injection implies `--faults`.
    DropLeak,
}

impl Inject {
    fn parse(s: &str) -> Option<Inject> {
        match s {
            "none" => Some(Inject::None),
            "mru-evict" => Some(Inject::MruEvict),
            "unbounded-queue" => Some(Inject::UnboundedQueue),
            "drop-leak" => Some(Inject::DropLeak),
            _ => None,
        }
    }

    fn oracle_fault(self) -> OracleFault {
        if self == Inject::MruEvict {
            OracleFault::EvictMru
        } else {
            OracleFault::None
        }
    }

    /// What a reproducer line must append so the failure actually
    /// reproduces (empty for no injection).
    fn repro_suffix(self) -> &'static str {
        match self {
            Inject::None => "",
            Inject::MruEvict => " --inject mru-evict",
            Inject::UnboundedQueue => " --inject unbounded-queue",
            Inject::DropLeak => " --inject drop-leak",
        }
    }
}

/// The graceful-degradation contract says "never panics"; this turns a
/// panic anywhere inside a check into an ordinary failure message so
/// the shrinker can minimize the offending case like any other.
fn no_panic(f: impl FnOnce() -> Result<(), String>) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Cycle-budget watchdog (0 = disabled).
fn within_budget(cycles: u64, max_cycles: u64, what: &str) -> Result<(), String> {
    if max_cycles != 0 && cycles > max_cycles {
        return Err(format!(
            "cycle budget exceeded in {what}: {cycles} > {max_cycles} (--max-cycles)"
        ));
    }
    Ok(())
}

/// Runs one materialized case through the differential oracle and
/// every scheme with invariants attached. First failure wins.
fn check_case(
    case: &grp_bench::fuzz::FuzzCase,
    cfg: &SimConfig,
    inject: Inject,
    max_cycles: u64,
) -> Result<(), String> {
    check_faulted_case(case, None, cfg, inject, max_cycles)
}

/// [`check_case`] with a [`FaultPlan`] armed on every run, including
/// both sides of the oracle differential. `None` is the unfaulted gate.
fn check_faulted_case(
    case: &grp_bench::fuzz::FuzzCase,
    plan: Option<&FaultPlan>,
    cfg: &SimConfig,
    inject: Inject,
    max_cycles: u64,
) -> Result<(), String> {
    no_panic(|| {
        let rep = differential_check_faulted(
            &case.trace,
            &case.mem,
            case.heap,
            cfg,
            inject.oracle_fault(),
            plan,
        )
        .map_err(|e| format!("oracle differential (no-prefetch): {e}"))?;
        within_budget(rep.cycles, max_cycles, "oracle differential")?;
        for scheme in Scheme::ALL {
            let mut engine = engine_for(scheme, cfg);
            if inject == Inject::UnboundedQueue {
                engine.inject_fault_unbounded_queue();
            }
            let obs = InvariantObserver::new(cfg).with_interval(256);
            let (result, obs) = replay_injected(
                &case.trace,
                &case.mem,
                case.heap,
                scheme,
                cfg,
                engine,
                obs,
                plan,
                inject == Inject::DropLeak,
            );
            if !obs.ok() {
                return Err(format!(
                    "invariants under {scheme:?} ({} violations): {}",
                    obs.total_violations(),
                    obs.violations().join("; ")
                ));
            }
            within_budget(result.cycles, max_cycles, &format!("{scheme:?} replay"))?;
        }
        Ok(())
    })
}

/// [`check_case`] on a freshly materialized plan — the shape the
/// shrinker minimizes over.
fn check_plan(
    plan: &FuzzPlan,
    cfg: &SimConfig,
    inject: Inject,
    max_cycles: u64,
) -> Result<(), String> {
    check_case(&materialize(plan), cfg, inject, max_cycles)
}

/// Phase 4's shrink target: an access plan and a fault plan, checked
/// together.
fn check_pair(
    pair: &(FuzzPlan, FaultPlan),
    cfg: &SimConfig,
    inject: Inject,
    max_cycles: u64,
) -> Result<(), String> {
    check_faulted_case(&materialize(&pair.0), Some(&pair.1), cfg, inject, max_cycles)
}

/// A fixed prefetch-heavy case for the built-in fault sweep: hinted
/// dense streams keep the region engines issuing (so delayed/dropped
/// fills and queue pressure actually bite), the pointer chain exercises
/// dependent-load merges into faulted fills.
fn fault_workout_case() -> grp_bench::fuzz::FuzzCase {
    materialize(&FuzzPlan {
        segments: vec![
            Segment::Spatial {
                count: 300,
                stride_words: 1,
                hinted: true,
                loop_bound: false,
            },
            Segment::Pointer {
                nodes: 120,
                node_stride_blocks: 1,
                hinted: true,
            },
            Segment::Spatial {
                count: 300,
                stride_words: 2,
                hinted: true,
                loop_bound: true,
            },
        ],
        compute_gap: 2,
        layout_seed: 0x5eed_fa17,
    })
}

/// The `--metrics` validator: re-parse a text exposition, enforce the
/// histogram bucket invariants, optionally require metric families to
/// be present, and optionally assert cumulative series are monotone
/// against an earlier scrape of the same process.
fn check_metrics(path: &str, prev: Option<&str>, require: Option<&str>) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let parsed = exposition::validate_text(&text)?;
    if let Some(req) = require {
        for fam in req.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            if !parsed.types.contains_key(fam) {
                return Err(format!("required metric family '{fam}' missing"));
            }
        }
    }
    let mut extra = String::new();
    if let Some(prev_path) = prev {
        let prev_text = std::fs::read_to_string(prev_path)
            .map_err(|e| format!("cannot read {prev_path}: {e}"))?;
        let prev_parsed =
            exposition::validate_text(&prev_text).map_err(|e| format!("{prev_path}: {e}"))?;
        exposition::check_monotone(&prev_parsed, &parsed)?;
        extra = format!(", monotone vs {prev_path}");
    }
    Ok(format!(
        "{} families, {} counters, {} histograms{extra}",
        parsed.types.len(),
        parsed.counters.len(),
        parsed.hist_counts.len()
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage_err = |e: String| -> ! {
        log::error("check", &e);
        std::process::exit(2);
    };
    log::init_from_args(&args).unwrap_or_else(|e| usage_err(e));

    if let Some(path) =
        strict_value(&args, "--metrics", "a metrics exposition file").unwrap_or_else(|e| usage_err(e))
    {
        let prev = strict_value(&args, "--metrics-prev", "an earlier exposition to compare")
            .unwrap_or_else(|e| usage_err(e));
        let require = strict_value(
            &args,
            "--metrics-require",
            "a comma-separated list of metric families",
        )
        .unwrap_or_else(|e| usage_err(e));
        match check_metrics(&path, prev.as_deref(), require.as_deref()) {
            Ok(summary) => println!("{path}: OK ({summary})"),
            Err(e) => {
                log::error("check", &format!("{path}: {e}"));
                std::process::exit(1);
            }
        }
        return;
    }

    if strict_flag(&args, "--chaos").unwrap_or_else(|e| usage_err(e)) {
        let seed = strict_u64(&args, "--seed", "a 64-bit seed")
            .unwrap_or_else(|e| usage_err(e))
            .unwrap_or(0x5eed_c4a0_5000_0000);
        let rounds = strict_u64(&args, "--chaos-rounds", "a storm round count")
            .unwrap_or_else(|e| usage_err(e))
            .unwrap_or(2)
            .max(1);
        let torn_rename = match strict_value(&args, "--inject", "none, torn-rename")
            .unwrap_or_else(|e| usage_err(e))
            .as_deref()
        {
            None | Some("none") => false,
            Some("torn-rename") => true,
            Some(s) => {
                usage_err(format!("unknown chaos injection '{s}' (valid: none, torn-rename)"))
            }
        };
        let dir = strict_value(&args, "--chaos-dir", "a scratch directory")
            .unwrap_or_else(|e| usage_err(e))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("grp-chaos-{}", std::process::id()))
            });
        let serve_bin = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("serve")))
            .unwrap_or_else(|| usage_err("cannot locate this binary's directory".to_string()));
        let opts = grp_bench::chaos::ChaosOpts { serve_bin, dir, seed, rounds, torn_rename };
        match grp_bench::chaos::run_chaos(&opts) {
            Ok(summary) => println!("chaos: OK ({summary})"),
            Err(e) => {
                log::error("check", &format!("chaos gate failed: {e}"));
                std::process::exit(1);
            }
        }
        return;
    }

    let scale = parse_scale_args(&args).unwrap_or_else(|e| usage_err(e));
    let cases = strict_u64(&args, "--cases", "a case count")
        .unwrap_or_else(|e| usage_err(e))
        .unwrap_or(64);
    let seed = strict_u64(&args, "--seed", "a 64-bit seed")
        .unwrap_or_else(|e| usage_err(e))
        .unwrap_or(0x5eed_c4ec_0000_0000);
    let max_cycles = strict_u64(&args, "--max-cycles", "a cycle budget, 0 to disable")
        .unwrap_or_else(|e| usage_err(e))
        .unwrap_or(DEFAULT_MAX_CYCLES);
    let mut faults = strict_flag(&args, "--faults").unwrap_or_else(|e| usage_err(e));
    let inject = match strict_value(
        &args,
        "--inject",
        "none, mru-evict, unbounded-queue, drop-leak",
    )
    .unwrap_or_else(|e| usage_err(e))
    {
        None => Inject::None,
        Some(s) => Inject::parse(&s).unwrap_or_else(|| {
            usage_err(format!(
                "unknown injection '{s}' (valid: none, mru-evict, unbounded-queue, drop-leak)"
            ))
        }),
    };
    if inject == Inject::DropLeak && !faults {
        println!("note: --inject drop-leak only fires under a fault plan; enabling --faults");
        faults = true;
    }

    let replay = grp_bench::args::parse_replay_args(&args).unwrap_or_else(|e| usage_err(e));

    let cfg = SimConfig::paper();
    let mut failures = 0u64;

    // Phase 0 (--packed): packed-vs-materialized identity over the
    // full kernel × scheme grid, through the trace cache when one is
    // configured — any diverging counter of any cell fails the gate.
    if replay.packed {
        let names: Vec<&'static str> = grp_workloads::all().iter().map(|w| w.name).collect();
        println!(
            "phase 0: packed identity on {} kernels x {} schemes ({:?} scale{})",
            names.len(),
            Scheme::ALL.len(),
            scale,
            if replay.trace_cache.is_some() { ", via trace cache" } else { "" }
        );
        let cache = grp_bench::sched::WorkloadCache::new();
        for name in &names {
            let mut bad = 0u64;
            for scheme in Scheme::ALL {
                let built = cache
                    .get_or_build(name, scale.workload_scale())
                    .expect("registered");
                let want = built.run(scheme, &cfg);
                let got = grp_bench::sched::run_cell(
                    name,
                    scale.workload_scale(),
                    scheme,
                    &cfg,
                    &replay,
                    || cache.get_or_build(name, scale.workload_scale()),
                );
                match got {
                    Ok((got, _, _, _)) if got == want => {}
                    Ok(_) => {
                        failures += 1;
                        bad += 1;
                        println!("  {name}/{}: DIVERGED (packed != materialized)", scheme.label());
                    }
                    Err(e) => {
                        failures += 1;
                        bad += 1;
                        println!("  {name}/{}: ERROR: {e}", scheme.label());
                    }
                }
            }
            if bad == 0 {
                println!("  {name}: OK ({} schemes identical)", Scheme::ALL.len());
            }
        }
    }

    // Phase 1: kernel differential against the reference oracle.
    let names: Vec<&'static str> = grp_workloads::all().iter().map(|w| w.name).collect();
    println!(
        "phase 1: oracle differential on {} kernels ({:?} scale, inject: {inject:?})",
        names.len(),
        scale
    );
    for name in &names {
        let built = grp_workloads::by_name(name)
            .expect("registered")
            .build(scale.workload_scale());
        let (trace, mem) = built.trace(None);
        match differential_check(&trace, &mem, built.heap, &cfg, inject.oracle_fault()) {
            Ok(rep) => println!("  {name}: OK ({} accesses, {} cycles)", rep.accesses, rep.cycles),
            Err(e) => {
                failures += 1;
                println!("  {name}: DIVERGED\n    {e}");
            }
        }
    }

    // Phase 1b: a fixed region-pressure case no random plan reaches —
    // thousands of single-miss regions saturating the engine queue.
    // This is what makes the unbounded-queue injection deterministic.
    match check_case(&grp_bench::fuzz::region_pressure_case(), &cfg, inject, max_cycles) {
        Ok(()) => println!("  region-pressure: OK"),
        Err(e) => {
            failures += 1;
            println!("  region-pressure: FAILED\n    {e}");
        }
    }

    // Phase 2: seeded fuzzing through every scheme with invariants.
    println!(
        "phase 2: {cases} fuzz cases x {} schemes (base seed {seed:#x})",
        Scheme::ALL.len()
    );
    let strat = any::<FuzzPlan>();
    for case_idx in 0..cases {
        let case_seed = seed.wrapping_add(case_idx);
        let plan = FuzzPlan::arbitrary(&mut Rng::seed_from_u64(case_seed));
        let Err(first_msg) = check_plan(&plan, &cfg, inject, max_cycles) else {
            continue;
        };
        failures += 1;
        let (min_plan, msg, steps) = greedy_shrink(&strat, plan, first_msg, 512, |p| {
            check_plan(p, &cfg, inject, max_cycles)
        });
        println!(
            "  case {case_idx} (seed {case_seed:#x}): FAILED\n    {msg}\n    \
             minimal plan after {steps} shrink steps: {min_plan:?}\n    \
             reproduce: --bin check -- --cases 1 --seed {case_seed:#x} \
             --max-cycles {max_cycles}{}",
            inject.repro_suffix()
        );
    }

    if faults {
        // Phase 3: every built-in fault plan on the fixed workout case.
        // The zero-fault identity runs first: an empty plan must be
        // byte-for-byte the unfaulted simulation.
        let builtins = FaultPlan::builtin();
        println!(
            "phase 3: fault sweep — zero-fault identity + {} built-in plans x {} schemes",
            builtins.len(),
            Scheme::ALL.len()
        );
        let workout = fault_workout_case();
        for scheme in [Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar, Scheme::Stride] {
            let plain = run_trace(&workout.trace, &workout.mem, workout.heap, scheme, &cfg);
            let idle = run_trace_faulted(
                &workout.trace,
                &workout.mem,
                workout.heap,
                scheme,
                &cfg,
                &FaultPlan::none(),
            );
            if plain != idle {
                failures += 1;
                println!("  zero-fault identity under {scheme:?}: FAILED (results differ)");
            }
        }
        println!("  zero-fault identity: checked");
        // Each builtin plan also runs once with the telemetry observer
        // attached — the same observer serve/fleet hang off the fault
        // layer — so the sweep doubles as a gate that armed plans
        // actually produce observable fault events.
        let fault_reg = telemetry::Registry::new();
        let fault_shard = fault_reg.shard();
        for (name, plan) in &builtins {
            let obs = TelemetryObserver::new(&fault_shard);
            let _ = run_trace_observed_faulted(
                &workout.trace,
                &workout.mem,
                workout.heap,
                Scheme::GrpVar,
                &cfg,
                obs,
                plan,
            );
            match check_faulted_case(&workout, Some(plan), &cfg, inject, max_cycles) {
                Ok(()) => println!("  builtin '{name}': OK"),
                Err(e) => {
                    failures += 1;
                    println!("  builtin '{name}': FAILED\n    {e}");
                }
            }
        }
        let snap = fault_reg.snapshot();
        let (actions, dropped, delayed) = (
            snap.family_total("grp_fault_events_total"),
            snap.family_total("grp_fault_fills_dropped_total"),
            snap.family_total("grp_fault_fills_delayed_total"),
        );
        println!(
            "  fault telemetry: {actions} action(s) applied, \
             {dropped} fill(s) dropped, {delayed} fill(s) delayed"
        );
        if actions + dropped + delayed == 0 {
            failures += 1;
            println!("  fault telemetry: FAILED (armed builtin plans produced no fault events)");
        }

        // Phase 4: faulted fuzzing over (access plan, fault plan) pairs.
        println!(
            "phase 4: {cases} faulted fuzz pairs x {} schemes (base seed {seed:#x})",
            Scheme::ALL.len()
        );
        let pair_strat = (any::<FuzzPlan>(), any::<FaultPlan>());
        for case_idx in 0..cases {
            let case_seed = seed.wrapping_add(case_idx);
            let mut rng = Rng::seed_from_u64(case_seed);
            let plan = FuzzPlan::arbitrary(&mut rng);
            let fault_plan = FaultPlan::arbitrary(&mut rng);
            let pair = (plan, fault_plan);
            let Err(first_msg) = check_pair(&pair, &cfg, inject, max_cycles) else {
                continue;
            };
            failures += 1;
            let (min_pair, msg, steps) = greedy_shrink(&pair_strat, pair, first_msg, 512, |p| {
                check_pair(p, &cfg, inject, max_cycles)
            });
            println!(
                "  pair {case_idx} (seed {case_seed:#x}): FAILED\n    {msg}\n    \
                 minimal pair after {steps} shrink steps:\n    plan:  {:?}\n    \
                 faults: {:?}\n    \
                 reproduce: --bin check -- --faults --cases 1 --seed {case_seed:#x} \
                 --max-cycles {max_cycles}{}",
                min_pair.0, min_pair.1,
                inject.repro_suffix()
            );
        }
    }

    if failures > 0 {
        println!("check: {failures} failure(s)");
        std::process::exit(1);
    }
    let mode = if faults {
        " (+ fault sweep and faulted pairs)"
    } else {
        ""
    };
    println!(
        "check: all kernels agree with the oracle; {cases} fuzz cases clean across {} schemes{mode}",
        Scheme::ALL.len()
    );
}

//! Regenerates Table 4: GRP/Var vs GRP/Fix traffic + region sizes.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    print!("{}", experiments::table4(&mut suite));
}

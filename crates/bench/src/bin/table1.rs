//! Regenerates Table 1: suite-wide speedup / traffic / perfect-L2 gap.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    let (_rows, text) = experiments::table1(&mut suite);
    print!("{text}");
}

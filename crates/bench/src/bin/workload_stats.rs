//! Workload characterization: footprint, reference mix, dependence
//! structure, and hint density per benchmark — the numbers used to
//! validate that each kernel models its SPEC counterpart's behaviour.
//! `cargo run -p grp-bench --bin workload_stats -- --scale small`
use grp_bench::{report::Table, suite::scale_from_args};
use grp_compiler::AnalysisConfig;
use grp_cpu::TraceStats;
use grp_workloads::all;

fn main() {
    let scale = scale_from_args().workload_scale();
    let mut t = Table::new(vec![
        "bench",
        "insts",
        "loads",
        "stores",
        "footprint KB",
        "refs/inst",
        "dep loads %",
        "max chain",
        "hinted %",
    ]);
    for w in all() {
        let built = w.build(scale);
        let (trace, _) = built.trace(Some(&AnalysisConfig::default()));
        let s = TraceStats::compute(&trace);
        t.row(vec![
            w.name.to_string(),
            s.instructions.to_string(),
            s.loads.to_string(),
            s.stores.to_string(),
            (s.footprint_bytes() / 1024).to_string(),
            format!("{:.3}", s.ref_density()),
            format!("{:.1}", s.dependent_ratio() * 100.0),
            s.max_dep_chain.to_string(),
            format!(
                "{:.1}",
                if s.loads == 0 { 0.0 } else { 100.0 * s.hinted_loads as f64 / s.loads as f64 }
            ),
        ]);
    }
    print!("{}", t.render());
}

//! Regenerates Figure 12: normalized memory traffic.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    print!("{}", experiments::figure12(&mut suite));
}

//! Regenerates Figure 9: pointer-prefetching-only speedups.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    print!("{}", experiments::figure9(&mut suite));
}

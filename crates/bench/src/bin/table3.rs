//! Regenerates Table 3: static compiler-hint census per benchmark.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args());
    print!("{}", experiments::table3(&mut suite));
}

//! Regenerates Figure 1: realistic vs perfect-L1/L2 performance.
use grp_bench::{experiments, suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    print!("{}", experiments::figure1(&mut suite));
}

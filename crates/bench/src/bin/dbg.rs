//! Per-benchmark inspection tool: prints detailed counters for every
//! scheme on one workload. Usage:
//! `cargo run -p grp-bench --bin dbg -- <bench> [--scale test|small|paper]`.
use grp_bench::{suite::scale_from_args, Suite};
use grp_core::Scheme;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "gzip".into());
    let name: &'static str = Box::leak(name.into_boxed_str());
    let mut suite = Suite::new(scale_from_args());
    for s in [
        Scheme::NoPrefetch,
        Scheme::Stride,
        Scheme::Srp,
        Scheme::GrpFix,
        Scheme::GrpVar,
        Scheme::HwPointer,
        Scheme::GrpPointer,
        Scheme::PerfectL2,
    ] {
        let r = suite.run(name, s);
        println!(
            "{:>10}: cyc={:>9} ipc={:.2} l2acc={:>7} l2miss={:>7} dem={:>6} pf={:>6} wb={:>6} useful={:>6} late={:>5} acc={:.2}",
            s.label(),
            r.cycles,
            r.ipc(),
            r.l2.demand_accesses,
            r.l2.demand_misses,
            r.traffic.demand_blocks,
            r.traffic.prefetch_blocks,
            r.traffic.writeback_blocks,
            r.l2.useful_prefetches,
            r.late_prefetch_merges,
            r.accuracy()
        );
        println!(
            "            alloc={} drop={} cand={} ptr={} ind={} hist={:?} useless={}",
            r.engine.entries_allocated,
            r.engine.entries_dropped,
            r.engine.candidates_issued,
            r.engine.pointer_entries,
            r.engine.indirect_entries,
            r.engine.region_size_hist,
            r.l2.useless_prefetches
        );
    }
}

//! Per-benchmark inspection tool: prints detailed counters for every
//! scheme on one workload, now including the full prefetch lifecycle
//! (outcome breakdown + timeliness histograms) from the observer layer.
//!
//! Usage:
//! `cargo run -p grp-bench --bin dbg -- <bench> [--scale test|small|paper]
//!  [--epoch N] [--trace-out <prefix>]`
//!
//! `--trace-out` writes one lifecycle JSONL per scheme
//! (`<prefix>-<scheme>.jsonl`); `--epoch` sets the metrics-sampling
//! interval (committed events, default 4096).
use grp_bench::obs_export::{flag_u64, flag_value, slug};
use grp_bench::suite::scale_from_args;
use grp_bench::telemetry::log;
use grp_core::{EpochSampler, LifecycleTracer, ObserverPair, Scheme, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "gzip".into());
    let scale = scale_from_args();
    let epoch = flag_u64(&args, "--epoch").unwrap_or(4096);
    if epoch == 0 {
        log::error("dbg", "--epoch must be positive");
        std::process::exit(2);
    }
    let trace_out = flag_value(&args, "--trace-out");
    let wl = grp_workloads::by_name(&name).unwrap_or_else(|| {
        log::error("dbg", &format!("unknown benchmark '{name}'"));
        std::process::exit(2);
    });
    let built = wl.build(scale.workload_scale());
    let cfg = SimConfig::paper();
    for s in [
        Scheme::NoPrefetch,
        Scheme::Stride,
        Scheme::Srp,
        Scheme::GrpFix,
        Scheme::GrpVar,
        Scheme::HwPointer,
        Scheme::GrpPointer,
        Scheme::PerfectL2,
    ] {
        let obs = ObserverPair(LifecycleTracer::new(), EpochSampler::new(epoch));
        let (r, ObserverPair(t, sampler)) = built.run_observed(s, &cfg, obs);
        println!(
            "{:>10}: cyc={:>9} ipc={:.2} l2acc={:>7} l2miss={:>7} dem={:>6} pf={:>6} wb={:>6} useful={:>6} late={:>5} acc={:.2}",
            s.label(),
            r.cycles,
            r.ipc(),
            r.l2.demand_accesses,
            r.l2.demand_misses,
            r.traffic.demand_blocks,
            r.traffic.prefetch_blocks,
            r.traffic.writeback_blocks,
            r.l2.useful_prefetches,
            r.late_prefetch_merges,
            r.accuracy()
        );
        println!(
            "            alloc={} drop={} cand={} ptr={} ind={} hist={:?} useless={}",
            r.engine.entries_allocated,
            r.engine.entries_dropped,
            r.engine.candidates_issued,
            r.engine.pointer_entries,
            r.engine.indirect_entries,
            r.engine.region_size_hist,
            r.l2.useless_prefetches
        );
        if t.issued() > 0 {
            println!(
                "            lifecycle: first_use={} late={} evicted={} resident={} in_flight={} squashed={} queued_end={} ({} epochs)",
                t.first_used(),
                t.late(),
                t.evicted_unused(),
                t.resident_at_end(),
                t.in_flight_at_end(),
                t.squashed(),
                t.queued_at_end(),
                sampler.snapshots().len()
            );
            println!("            fill->use: {}", t.fill_to_use());
            println!("            queue-res: {}", t.queue_residency());
        }
        if let Some(prefix) = &trace_out {
            let path = format!("{prefix}-{}.jsonl", slug(s.label()));
            if let Some(dir) = std::path::Path::new(&path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create --trace-out directory");
                }
            }
            std::fs::write(&path, t.jsonl()).expect("write --trace-out jsonl");
            log::info("dbg", &format!("wrote {path}"));
        }
    }
}

//! Prints Table 2: the hint taxonomy.
fn main() {
    print!("{}", grp_bench::experiments::table2());
}

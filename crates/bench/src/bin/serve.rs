//! Long-running replay server: accepts batches of newline-delimited
//! JSON job requests, shards each batch across the work-stealing cell
//! scheduler, and streams per-job `RunResult` summaries back — the
//! "heavy traffic" deployment shape, where many concurrent request
//! streams amortize one shared pool of precomputed workloads.
//!
//! The protocol and batching engine live in [`grp_bench::serve`]; this
//! binary owns only transport (stdin vs unix socket, accept retry with
//! bounded backoff) and process-exit policy.
//!
//! ```text
//! cargo run --release -p grp-bench --bin serve -- [--scale test|small|paper]
//!     [--jobs N]            worker count (default: available parallelism)
//!     [--packed]            replay cells through the packed tier
//!                           (bit-identical; --selfcheck replays the
//!                           materialized path and so doubles as a
//!                           per-reply packed-identity gate)
//!     [--trace-cache <dir>] reuse packed pre-interpreted traces
//!                           across batches, connections, and processes
//!     [--socket <path>]     accept connections on a unix socket instead
//!                           of stdin (one client at a time)
//!     [--once]              with --socket: exit after the first client
//!     [--selfcheck]         re-run every reply serially on a freshly
//!                           built workload and exit nonzero on any
//!                           bit-difference (the verify.sh gate)
//!     [--perf-out <path>]   append a fleet-shaped entry aggregated over
//!                           the whole session on shutdown
//!     [--label <name>]      entry label for --perf-out (default "serve")
//!     [--metrics-out <path>] write the metrics registry as Prometheus
//!                           text (+ `<path>.json` twin) after each
//!                           client session (sockets) / at shutdown;
//!                           on startup an existing `<path>.json` seeds
//!                           the registry so scrapes stay monotone
//!                           across a restart
//!     [--request-deadline-ms <N>] wall-clock deadline per job, stamped
//!                           at admission: a job still queued when it
//!                           expires gets a named `deadline_exceeded`
//!                           error reply instead of running (composes
//!                           with the in-sim --max-cycles watchdog)
//!     [--max-inflight <N>]  bounded admission: at most N jobs batched
//!                           per session; excess jobs are shed with a
//!                           named `overloaded` error reply (default:
//!                           workers x 8)
//!     [--log-level <lvl>]   error|warn|info|debug|trace (or GRP_LOG)
//! cargo run -p grp-bench --bin serve -- --check-replies <path>
//!     validate a saved reply stream (shape + ok status) and exit
//! ```
//!
//! Request lines: `{"kernel":…,"scheme":…}` jobs batched until a blank
//! line, plus the in-band `{"stats":true}` probe answered immediately
//! with a snapshot of the session's metrics registry and the
//! `{"drain":true}` probe that flushes everything in flight,
//! acknowledges, and exits 0 — see the [`grp_bench::serve`] module docs
//! for the full protocol.
//!
//! Startup is the recovery path (crash-only): before serving, the
//! process sweeps orphaned staging files and stale locks next to every
//! artifact it will write, and quarantines invalid trace-cache entries
//! — so a kill -9 at any instant costs at most one in-flight write,
//! never a torn artifact.

use std::io::BufReader;
use std::path::Path;
use std::time::Duration;

use grp_bench::args::{jobs_from_args, parse_replay_args, strict_flag, strict_u64};
use grp_bench::obs_export::flag_value;
use grp_bench::serve::{
    check_replies, seed_counters_from_json, AcceptBackoff, Server, ServerOpts, SessionEnd,
};
use grp_bench::suite::scale_from_args;
use grp_bench::telemetry::log::{self, Level};
use grp_bench::{artifact, telemetry, traj};
use grp_core::{Scheme, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = flag_value(&args, "--check-replies") {
        match check_replies(&path) {
            Ok(n) => println!("{path}: OK ({n} replies)"),
            Err(e) => {
                log::error("serve", &format!("{path}: {e}"));
                std::process::exit(1);
            }
        }
        return;
    }

    let fail = |e: String| -> ! {
        log::error("serve", &e);
        std::process::exit(2);
    };
    log::init_from_args(&args).unwrap_or_else(|e| fail(e));
    let scale = scale_from_args();
    let workers = jobs_from_args().unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    });
    let selfcheck = strict_flag(&args, "--selfcheck").unwrap_or_else(|e| fail(e));
    let once = strict_flag(&args, "--once").unwrap_or_else(|e| fail(e));
    let socket = flag_value(&args, "--socket");
    let perf_out = flag_value(&args, "--perf-out");
    let metrics_out = flag_value(&args, "--metrics-out");
    let label = flag_value(&args, "--label").unwrap_or_else(|| "serve".to_string());
    let deadline_ms = strict_u64(&args, "--request-deadline-ms", "milliseconds, e.g. 5000")
        .unwrap_or_else(|e| fail(e));
    let max_inflight = strict_u64(&args, "--max-inflight", "a positive job count")
        .unwrap_or_else(|e| fail(e));
    if max_inflight == Some(0) {
        fail("--max-inflight must be at least 1".to_string());
    }
    let mode = parse_replay_args(&args).unwrap_or_else(|e| fail(e));

    // Crash-only startup: recovery is the normal path, not an error
    // path. Sweep staging orphans and stale locks (dead owners only)
    // next to every artifact this process will write, and quarantine
    // trace-cache entries that no longer validate.
    let mut recovered = artifact::RecoveryReport::default();
    let mut quarantined = 0usize;
    for out in [perf_out.as_deref(), metrics_out.as_deref()].into_iter().flatten() {
        let parent = Path::new(out).parent().filter(|p| !p.as_os_str().is_empty());
        let dir = parent.unwrap_or_else(|| Path::new("."));
        match artifact::recover_dir(dir, Duration::ZERO) {
            Ok(r) => recovered.absorb(r),
            Err(e) => {
                log::warn("serve", &format!("recovery scan of {} failed: {e}", dir.display()))
            }
        }
    }
    if let Some(cache) = &mode.trace_cache {
        match cache.recover(Duration::ZERO) {
            Ok((r, q)) => {
                recovered.absorb(r);
                quarantined += q;
            }
            Err(e) => log::warn("serve", &format!("trace-cache recovery failed: {e}")),
        }
    }
    log::log_kv(
        Level::Info,
        "serve",
        "startup recovery scan complete",
        &[
            ("swept_tmp", (recovered.swept_tmp as u64).into()),
            ("swept_lock", (recovered.swept_lock as u64).into()),
            ("quarantined", (quarantined as u64).into()),
        ],
    );

    // The process-global registry, so trace-cache counters (which
    // record globally) appear in the same scrape.
    let registry = telemetry::registry().clone();
    // Restart carryover: seed counters from the previous process's
    // last scrape so the series stays monotone across a crash.
    if let Some(path) = &metrics_out {
        let twin = format!("{path}.json");
        if Path::new(&twin).exists() {
            match seed_counters_from_json(&registry, &twin) {
                Ok(n) => log::info("serve", &format!("carried {n} counters over from {twin}")),
                Err(e) => {
                    log::warn("serve", &format!("metrics carryover from {twin} skipped: {e}"))
                }
            }
        }
    }

    let mut server = Server::new(ServerOpts {
        workers,
        default_scale: scale,
        cfg: SimConfig::paper(),
        mode,
        selfcheck,
        registry,
        request_deadline: deadline_ms.map(Duration::from_millis),
        max_inflight: max_inflight.map(|n| n as usize),
    });
    let export = |server: &Server| {
        if let Some(path) = &metrics_out {
            if let Err(e) = server.write_metrics(path) {
                log::warn("serve", &format!("metrics export to {path} failed: {e}"));
            }
        }
    };

    match socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            // EOF, drain, and client-gone all end the lone stdin
            // session; the shared shutdown tail below flushes
            // everything through the atomic layer either way.
            let _ = server.session(stdin.lock(), &mut stdout.lock());
            export(&server);
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| fail(format!("cannot bind {path}: {e}")));
            log::log_kv(
                Level::Info,
                "serve",
                "listening",
                &[("socket", path.as_str().into()), ("workers", (workers as u64).into())],
            );
            // Accept failures back off exponentially and become
            // terminal after an unbroken run — a dead listener must
            // not spin the process at 100% CPU.
            let mut backoff = AcceptBackoff::new();
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => {
                        backoff.on_success();
                        s
                    }
                    Err(e) => match backoff.on_failure() {
                        Some(delay) => {
                            log::log_kv(
                                Level::Warn,
                                "serve",
                                "accept failed; backing off",
                                &[
                                    ("error", e.to_string().into()),
                                    ("retry_ms", (delay.as_millis() as u64).into()),
                                ],
                            );
                            std::thread::sleep(delay);
                            continue;
                        }
                        None => {
                            // The terminal give-up leaves a structured
                            // last word (count + errno), then falls
                            // through to the shared shutdown tail.
                            backoff.log_terminal(&e);
                            break;
                        }
                    },
                };
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        log::warn("serve", &format!("cannot clone stream: {e}"));
                        continue;
                    }
                });
                let mut writer = stream;
                let end = server.session(reader, &mut writer);
                export(&server);
                if end == SessionEnd::Drain {
                    log::info("serve", "drain requested; flushed and exiting");
                    break;
                }
                if once {
                    break;
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    if let Some(out) = perf_out {
        if server.totals().is_some() {
            let scheme_labels: Vec<&str> = Scheme::ALL.map(|s| s.label()).to_vec();
            let rows = server.take_rows();
            let stats = server.totals().expect("checked above");
            let entry = traj::fleet_entry(
                &label,
                &format!("{:?}", server.default_scale()).to_lowercase(),
                &scheme_labels,
                stats,
                rows,
            );
            traj::append_entry(&out, entry).unwrap_or_else(|e| {
                log::error("serve", &e.to_string());
                std::process::exit(1);
            });
            log::info("serve", &format!("appended entry '{label}' to {out}"));
        } else {
            log::info("serve", &format!("no jobs ran, nothing appended to {out}"));
        }
    }
    if server.mismatches() > 0 {
        log::error(
            "serve",
            &format!(
                "SELFCHECK FAILED — {} repl(y/ies) differ from the serial path",
                server.mismatches()
            ),
        );
        std::process::exit(1);
    }
}

//! Long-running replay server: accepts batches of newline-delimited
//! JSON job requests, shards each batch across the work-stealing cell
//! scheduler, and streams per-job `RunResult` summaries back — the
//! "heavy traffic" deployment shape, where many concurrent request
//! streams amortize one shared pool of precomputed workloads.
//!
//! ```text
//! cargo run --release -p grp-bench --bin serve -- [--scale test|small|paper]
//!     [--jobs N]            worker count (default: available parallelism)
//!     [--packed]            replay cells through the packed tier
//!                           (bit-identical; --selfcheck replays the
//!                           materialized path and so doubles as a
//!                           per-reply packed-identity gate)
//!     [--trace-cache <dir>] reuse packed pre-interpreted traces
//!                           across batches, connections, and processes
//!     [--socket <path>]     accept connections on a unix socket instead
//!                           of stdin (one client at a time)
//!     [--once]              with --socket: exit after the first client
//!     [--selfcheck]         re-run every reply serially on a freshly
//!                           built workload and exit nonzero on any
//!                           bit-difference (the verify.sh gate)
//!     [--perf-out <path>]   append a fleet-shaped entry aggregated over
//!                           the whole session on shutdown
//!     [--label <name>]      entry label for --perf-out (default "serve")
//! cargo run -p grp-bench --bin serve -- --check-replies <path>
//!     validate a saved reply stream (shape + ok status) and exit
//! ```
//!
//! # Protocol
//!
//! One JSON object per line. A **blank line** (or EOF) closes the
//! current batch: the batch is scheduled as a fleet, and one reply line
//! is written per job *in completion order* — correlate by `id`.
//!
//! Request: `{"kernel": "bzip2", "scheme": "SRP"}` with optional
//! `"id"` (echoed; defaults to the 1-based input line number) and
//! `"scale"` (`test`/`small`/`paper`; defaults to `--scale`). Unknown
//! keys are rejected — a typo'd field must not be silently ignored.
//!
//! Reply (success): `{"id":1,"ok":true,"bench":"bzip2","scheme":"SRP",
//! "scale":"small","worker":0,"events":…,"replay_seconds":…,
//! "result":{…full RunResult summary…}}`
//!
//! Reply (failure): `{"id":1,"ok":false,"error":"unknown scheme 'SPR'
//! (valid: …)"}` — a malformed request fails alone, never the batch.
//!
//! Built workloads are cached across batches *and* connections keyed by
//! `(kernel, scale)`, so a second request for any scheme of an
//! already-seen kernel skips straight to replay.

use std::io::{BufRead, BufReader, Write};

use grp_bench::args::{jobs_from_args, parse_replay_args, strict_flag};
use grp_bench::json::{run_result_json, Json};
use grp_bench::obs_export::flag_value;
use grp_bench::sched::{self, CellJob, CellResult, FleetStats, ReplayMode, WorkloadCache};
use grp_bench::suite::{scale_from_args, SuiteScale};
use grp_bench::traj;
use grp_core::{Scheme, SimConfig};
use grp_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = flag_value(&args, "--check-replies") {
        match check_replies(&path) {
            Ok(n) => println!("{path}: OK ({n} replies)"),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let fail = |e: String| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };
    let scale = scale_from_args();
    let workers = jobs_from_args().unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    });
    let selfcheck = strict_flag(&args, "--selfcheck").unwrap_or_else(|e| fail(e));
    let once = strict_flag(&args, "--once").unwrap_or_else(|e| fail(e));
    let socket = flag_value(&args, "--socket");
    let perf_out = flag_value(&args, "--perf-out");
    let label = flag_value(&args, "--label").unwrap_or_else(|| "serve".to_string());
    let mode = parse_replay_args(&args).unwrap_or_else(|e| fail(e));

    let mut server = Server {
        workers,
        default_scale: scale,
        cfg: SimConfig::paper(),
        cache: WorkloadCache::new(),
        mode,
        selfcheck,
        batches: 0,
        totals: None,
        rows: Vec::new(),
        mismatches: 0,
    };

    match socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server.session(stdin.lock(), &mut stdout.lock());
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| fail(format!("cannot bind {path}: {e}")));
            eprintln!("serve: listening on {path} ({workers} workers)");
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("serve: accept failed: {e}");
                        continue;
                    }
                };
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("serve: cannot clone stream: {e}");
                        continue;
                    }
                });
                let mut writer = stream;
                server.session(reader, &mut writer);
                if once {
                    break;
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    if let Some(out) = perf_out {
        if let Some(stats) = &server.totals {
            let scheme_labels: Vec<&str> = Scheme::ALL.map(|s| s.label()).to_vec();
            let entry = traj::fleet_entry(
                &label,
                &format!("{:?}", server.default_scale).to_lowercase(),
                &scheme_labels,
                stats,
                std::mem::take(&mut server.rows),
            );
            traj::append_entry(&out, entry).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            eprintln!("serve: appended entry '{label}' to {out}");
        } else {
            eprintln!("serve: no jobs ran, nothing appended to {out}");
        }
    }
    if server.mismatches > 0 {
        eprintln!(
            "serve: SELFCHECK FAILED — {} repl(y/ies) differ from the serial path",
            server.mismatches
        );
        std::process::exit(1);
    }
}

struct Server {
    workers: usize,
    default_scale: SuiteScale,
    cfg: SimConfig,
    cache: WorkloadCache,
    /// Replay tier + optional trace cache for every scheduled cell.
    mode: ReplayMode,
    selfcheck: bool,
    batches: u64,
    /// Session-lifetime aggregate for `--perf-out` (fleet entry shape).
    totals: Option<FleetStats>,
    /// Per-cell rows for the fleet entry's `kernels` array.
    rows: Vec<Json>,
    mismatches: u64,
}

impl Server {
    /// Reads one client's request stream to EOF, flushing a batch at
    /// every blank line.
    fn session<R: BufRead, W: Write>(&mut self, reader: R, out: &mut W) {
        let mut batch: Vec<Result<CellJob, (u64, String)>> = Vec::new();
        let mut lineno = 0u64;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("serve: read failed: {e}");
                    break;
                }
            };
            lineno += 1;
            if line.trim().is_empty() {
                self.flush_batch(&mut batch, out);
                continue;
            }
            batch.push(parse_request(&line, lineno, self.default_scale));
        }
        self.flush_batch(&mut batch, out);
    }

    /// Schedules the accumulated batch across the fleet and writes one
    /// reply line per job as its cell completes.
    fn flush_batch<W: Write>(
        &mut self,
        batch: &mut Vec<Result<CellJob, (u64, String)>>,
        out: &mut W,
    ) {
        if batch.is_empty() {
            return;
        }
        let mut jobs: Vec<CellJob> = Vec::new();
        for req in batch.drain(..) {
            match req {
                Ok(job) => jobs.push(job),
                Err((id, e)) => {
                    let reply = Json::object().set("id", id).set("ok", false).set("error", e);
                    writeln!(out, "{}", reply.render()).expect("write reply");
                }
            }
        }
        out.flush().expect("flush replies");
        if jobs.is_empty() {
            return;
        }
        self.batches += 1;
        let mut completed: Vec<CellResult> = Vec::new();
        let stats = sched::run_cells_mode(&jobs, self.workers, &self.cache, &self.mode, |cell| {
            let reply = match &cell.outcome {
                Ok(r) => Json::object()
                    .set("id", cell.id)
                    .set("ok", true)
                    .set("bench", cell.kernel)
                    .set("scheme", cell.scheme.label())
                    .set("scale", scale_label(cell.scale))
                    .set("worker", cell.worker as u64)
                    .set("events", cell.events)
                    .set("replay_seconds", cell.replay_seconds)
                    .set("result", run_result_json(r, None)),
                Err(e) => Json::object()
                    .set("id", cell.id)
                    .set("ok", false)
                    .set("error", e.as_str()),
            };
            writeln!(out, "{}", reply.render()).expect("write reply");
            out.flush().expect("flush reply");
            completed.push(cell);
        });
        eprintln!(
            "serve: batch {} — {} job(s), {} error(s), {:.3}s wall, {:.0} events/s aggregate, \
             {} workload(s) cached",
            self.batches,
            stats.cells,
            stats.errors,
            stats.wall_seconds,
            stats.events_per_sec(),
            self.cache.built_count(),
        );
        for cell in &completed {
            if let Ok(r) = &cell.outcome {
                self.rows.push(
                    Json::object()
                        .set("bench", cell.kernel)
                        .set("scheme", cell.scheme.label())
                        .set("events", cell.events)
                        .set("sim_cycles", r.cycles)
                        .set("replay_seconds", cell.replay_seconds)
                        .set(
                            "events_per_sec",
                            cell.events as f64 / cell.replay_seconds.max(1e-9),
                        )
                        .set("sim_cycles_per_sec", r.cycles as f64 / cell.replay_seconds.max(1e-9))
                        .set("worker", cell.worker as u64),
                );
            }
        }
        self.absorb(stats);
        if self.selfcheck {
            self.selfcheck_batch(&completed);
        }
    }

    /// Folds one batch's fleet stats into the session totals.
    fn absorb(&mut self, s: FleetStats) {
        match &mut self.totals {
            None => self.totals = Some(s),
            Some(t) => {
                t.cells += s.cells;
                t.errors += s.errors;
                t.wall_seconds += s.wall_seconds;
                t.events += s.events;
                t.sim_cycles += s.sim_cycles;
                t.replay_seconds += s.replay_seconds;
                t.setup_seconds += s.setup_seconds;
                t.steals += s.steals;
                t.queue_wait_micros.absorb(&s.queue_wait_micros);
                // Worker count is fixed for the session (--jobs), but a
                // tiny batch can spawn fewer workers than configured —
                // fold per-worker columns index-wise.
                for w in 0..s.workers.min(t.workers) {
                    t.busy_seconds[w] += s.busy_seconds[w];
                    t.cells_per_worker[w] += s.cells_per_worker[w];
                }
            }
        }
    }

    /// Re-runs every completed cell serially on a **freshly built**
    /// workload (no shared cache — full independence from the fleet
    /// path) and records any bit-difference. The serial side always
    /// replays materialized, so under `--packed` (or `--trace-cache`)
    /// this is also a packed-vs-materialized identity gate per reply.
    fn selfcheck_batch(&mut self, completed: &[CellResult]) {
        for cell in completed {
            let Ok(got) = &cell.outcome else { continue };
            let Some(w) = grp_workloads::by_name(cell.kernel) else { continue };
            let want = w.build(cell.scale).run(cell.scheme, &self.cfg);
            if *got != want {
                eprintln!(
                    "serve: selfcheck mismatch on {}/{} at {} scale (fleet {} cycles, serial {})",
                    cell.kernel,
                    cell.scheme.label(),
                    scale_label(cell.scale),
                    got.cycles,
                    want.cycles
                );
                self.mismatches += 1;
            }
        }
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Parses one request line into a cell job; errors carry the reply id.
fn parse_request(
    line: &str,
    lineno: u64,
    default_scale: SuiteScale,
) -> Result<CellJob, (u64, String)> {
    let doc = Json::parse(line).map_err(|e| (lineno, format!("malformed request: {e}")))?;
    let fields = doc
        .entries()
        .ok_or((lineno, "request must be a JSON object".to_string()))?;
    // The id (when present and well-formed) tags even the errors below.
    let id = doc.get("id").and_then(|v| v.as_u64()).unwrap_or(lineno);
    let mut kernel: Option<&'static str> = None;
    let mut scheme: Option<Scheme> = None;
    let mut scale: Scale = default_scale.workload_scale();
    for (key, value) in fields {
        match key.as_str() {
            "id" => {
                value
                    .as_u64()
                    .ok_or((id, "'id' must be a non-negative integer".to_string()))?;
            }
            "kernel" => {
                let name = value
                    .as_str()
                    .ok_or((id, "'kernel' must be a string".to_string()))?;
                kernel = Some(
                    grp_workloads::by_name(name)
                        .map(|w| w.name)
                        .ok_or_else(|| {
                            (id, format!("unknown kernel '{name}' (valid: registry names, e.g. gzip, mcf, bzip2)"))
                        })?,
                );
            }
            "scheme" => {
                let label = value
                    .as_str()
                    .ok_or((id, "'scheme' must be a string".to_string()))?;
                scheme = Some(Scheme::by_label(label).ok_or_else(|| {
                    (
                        id,
                        format!(
                            "unknown scheme '{label}' (valid: {})",
                            Scheme::ALL.map(|s| s.label()).join(", ")
                        ),
                    )
                })?);
            }
            "scale" => {
                let s = value
                    .as_str()
                    .ok_or((id, "'scale' must be a string".to_string()))?;
                scale = SuiteScale::parse(s)
                    .ok_or_else(|| (id, format!("unknown scale '{s}' (valid: test, small, paper)")))?
                    .workload_scale();
            }
            other => {
                return Err((
                    id,
                    format!("unknown request field '{other}' (valid: id, kernel, scheme, scale)"),
                ))
            }
        }
    }
    Ok(CellJob {
        id,
        kernel: kernel.ok_or((id, "request missing 'kernel'".to_string()))?,
        scheme: scheme.ok_or((id, "request missing 'scheme'".to_string()))?,
        scale,
        cfg: SimConfig::paper(),
    })
}

/// Validates a saved reply stream: every line parses, has a boolean
/// `ok`, and successful replies carry the summary fields. Any
/// `ok: false` line is reported as a failure.
fn check_replies(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: malformed: {e}", i + 1))?;
        let ok = doc
            .get("ok")
            .and_then(|v| v.as_bool())
            .ok_or(format!("line {}: missing boolean 'ok'", i + 1))?;
        doc.get("id")
            .and_then(|v| v.as_u64())
            .ok_or(format!("line {}: missing 'id'", i + 1))?;
        if !ok {
            let e = doc.get("error").and_then(|v| v.as_str()).unwrap_or("<no error field>");
            return Err(format!("line {}: reply failed: {e}", i + 1));
        }
        for key in ["bench", "scheme", "scale"] {
            doc.get(key)
                .and_then(|v| v.as_str())
                .ok_or(format!("line {}: missing string '{key}'", i + 1))?;
        }
        let cycles = doc
            .get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(|v| v.as_u64())
            .ok_or(format!("line {}: missing result.cycles", i + 1))?;
        if cycles == 0 {
            return Err(format!("line {}: zero-cycle result", i + 1));
        }
        n += 1;
    }
    if n == 0 {
        return Err("no replies in file".to_string());
    }
    Ok(n)
}

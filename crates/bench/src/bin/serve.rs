//! Long-running replay server: accepts batches of newline-delimited
//! JSON job requests, shards each batch across the work-stealing cell
//! scheduler, and streams per-job `RunResult` summaries back — the
//! "heavy traffic" deployment shape, where many concurrent request
//! streams amortize one shared pool of precomputed workloads.
//!
//! The protocol and batching engine live in [`grp_bench::serve`]; this
//! binary owns only transport (stdin vs unix socket, accept retry with
//! bounded backoff) and process-exit policy.
//!
//! ```text
//! cargo run --release -p grp-bench --bin serve -- [--scale test|small|paper]
//!     [--jobs N]            worker count (default: available parallelism)
//!     [--packed]            replay cells through the packed tier
//!                           (bit-identical; --selfcheck replays the
//!                           materialized path and so doubles as a
//!                           per-reply packed-identity gate)
//!     [--trace-cache <dir>] reuse packed pre-interpreted traces
//!                           across batches, connections, and processes
//!     [--socket <path>]     accept connections on a unix socket instead
//!                           of stdin (one client at a time)
//!     [--once]              with --socket: exit after the first client
//!     [--selfcheck]         re-run every reply serially on a freshly
//!                           built workload and exit nonzero on any
//!                           bit-difference (the verify.sh gate)
//!     [--perf-out <path>]   append a fleet-shaped entry aggregated over
//!                           the whole session on shutdown
//!     [--label <name>]      entry label for --perf-out (default "serve")
//!     [--metrics-out <path>] write the metrics registry as Prometheus
//!                           text (+ `<path>.json` twin) after each
//!                           client session (sockets) / at shutdown
//!     [--log-level <lvl>]   error|warn|info|debug|trace (or GRP_LOG)
//! cargo run -p grp-bench --bin serve -- --check-replies <path>
//!     validate a saved reply stream (shape + ok status) and exit
//! ```
//!
//! Request lines: `{"kernel":…,"scheme":…}` jobs batched until a blank
//! line, plus the in-band `{"stats":true}` probe answered immediately
//! with a snapshot of the session's metrics registry — see the
//! [`grp_bench::serve`] module docs for the full protocol.

use std::io::BufReader;

use grp_bench::args::{jobs_from_args, parse_replay_args, strict_flag};
use grp_bench::obs_export::flag_value;
use grp_bench::serve::{check_replies, AcceptBackoff, Server, ServerOpts};
use grp_bench::suite::scale_from_args;
use grp_bench::telemetry::log::{self, Level};
use grp_bench::{telemetry, traj};
use grp_core::{Scheme, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = flag_value(&args, "--check-replies") {
        match check_replies(&path) {
            Ok(n) => println!("{path}: OK ({n} replies)"),
            Err(e) => {
                log::error("serve", &format!("{path}: {e}"));
                std::process::exit(1);
            }
        }
        return;
    }

    let fail = |e: String| -> ! {
        log::error("serve", &e);
        std::process::exit(2);
    };
    log::init_from_args(&args).unwrap_or_else(|e| fail(e));
    let scale = scale_from_args();
    let workers = jobs_from_args().unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    });
    let selfcheck = strict_flag(&args, "--selfcheck").unwrap_or_else(|e| fail(e));
    let once = strict_flag(&args, "--once").unwrap_or_else(|e| fail(e));
    let socket = flag_value(&args, "--socket");
    let perf_out = flag_value(&args, "--perf-out");
    let metrics_out = flag_value(&args, "--metrics-out");
    let label = flag_value(&args, "--label").unwrap_or_else(|| "serve".to_string());
    let mode = parse_replay_args(&args).unwrap_or_else(|e| fail(e));

    let mut server = Server::new(ServerOpts {
        workers,
        default_scale: scale,
        cfg: SimConfig::paper(),
        mode,
        selfcheck,
        // The process-global registry, so trace-cache counters (which
        // record globally) appear in the same scrape.
        registry: telemetry::registry().clone(),
    });
    let export = |server: &Server| {
        if let Some(path) = &metrics_out {
            if let Err(e) = server.write_metrics(path) {
                log::warn("serve", &format!("metrics export to {path} failed: {e}"));
            }
        }
    };

    match socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server.session(stdin.lock(), &mut stdout.lock());
            export(&server);
        }
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| fail(format!("cannot bind {path}: {e}")));
            log::log_kv(
                Level::Info,
                "serve",
                "listening",
                &[("socket", path.as_str().into()), ("workers", (workers as u64).into())],
            );
            // Accept failures back off exponentially and become
            // terminal after an unbroken run — a dead listener must
            // not spin the process at 100% CPU.
            let mut backoff = AcceptBackoff::new();
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => {
                        backoff.on_success();
                        s
                    }
                    Err(e) => match backoff.on_failure() {
                        Some(delay) => {
                            log::log_kv(
                                Level::Warn,
                                "serve",
                                "accept failed; backing off",
                                &[
                                    ("error", e.to_string().into()),
                                    ("retry_ms", (delay.as_millis() as u64).into()),
                                ],
                            );
                            std::thread::sleep(delay);
                            continue;
                        }
                        None => {
                            log::error(
                                "serve",
                                &format!(
                                    "accept failed {} times in a row (last: {e}); giving up",
                                    AcceptBackoff::MAX_FAILURES + 1
                                ),
                            );
                            break;
                        }
                    },
                };
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        log::warn("serve", &format!("cannot clone stream: {e}"));
                        continue;
                    }
                });
                let mut writer = stream;
                server.session(reader, &mut writer);
                export(&server);
                if once {
                    break;
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    if let Some(out) = perf_out {
        if server.totals().is_some() {
            let scheme_labels: Vec<&str> = Scheme::ALL.map(|s| s.label()).to_vec();
            let rows = server.take_rows();
            let stats = server.totals().expect("checked above");
            let entry = traj::fleet_entry(
                &label,
                &format!("{:?}", server.default_scale()).to_lowercase(),
                &scheme_labels,
                stats,
                rows,
            );
            traj::append_entry(&out, entry).unwrap_or_else(|e| {
                log::error("serve", &e.to_string());
                std::process::exit(1);
            });
            log::info("serve", &format!("appended entry '{label}' to {out}"));
        } else {
            log::info("serve", &format!("no jobs ran, nothing appended to {out}"));
        }
    }
    if server.mismatches() > 0 {
        log::error(
            "serve",
            &format!(
                "SELFCHECK FAILED — {} repl(y/ies) differ from the serial path",
                server.mismatches()
            ),
        );
        std::process::exit(1);
    }
}

//! Reproduces the complete evaluation: every table and figure, sharing
//! one memoized suite. `--scale test|small|paper` selects problem size;
//! `--jobs N` (or the `GRP_JOBS` env var) caps the parallel precompute
//! workers; `--json <path>` additionally writes machine-readable
//! per-run results.
//!
//! Observability: `--trace-out <prefix>` re-runs the perf benchmarks
//! under GRP/Var with the lifecycle tracer and writes per-benchmark
//! `<prefix>-<bench>.jsonl` + `<prefix>-<bench>.trace.json`;
//! `--metrics-out <prefix>` writes `<prefix>-<bench>.metrics.json`;
//! `--epoch N` sets the sampling interval (default 4096 events).
//!
//! Replay tier: `--packed` replays every cell through the packed
//! struct-of-arrays tier, and `--trace-cache <dir>` persists packed
//! pre-interpreted traces so a re-run (or another binary) skips
//! build + interpretation. Results are bit-identical either way.
//!
//! Harness telemetry: the precompute fleet records into the
//! process-global registry (`grp_suite_precompute_*`, `grp_fleet_*`,
//! trace-cache counters), and `--registry-out <path>` writes that
//! registry at exit as Prometheus text plus a `<path>.json` twin —
//! the same export shape `serve --metrics-out` produces.
use grp_bench::json::{run_result_json, Json};
use grp_bench::obs_export::{chrome_trace, flag_u64, flag_value, metrics_json};
use grp_bench::telemetry::{self, exposition, log};
use grp_bench::{experiments, suite::scale_from_args, Suite};
use grp_core::{EpochSampler, LifecycleTracer, ObserverPair, Scheme};
use grp_workloads::BenchClass;

fn main() {
    let scale = scale_from_args();
    let jobs = grp_bench::args::jobs_from_args();
    let argv: Vec<String> = std::env::args().collect();
    let replay = grp_bench::args::parse_replay_args(&argv)
        .unwrap_or_else(|e| {
            log::error("all", &e);
            std::process::exit(2);
        })
        // Fleet and cache counters land in the process registry so a
        // --registry-out scrape covers the whole precompute phase.
        .with_telemetry(telemetry::registry().clone());
    let mut suite = Suite::new(scale).verbose().with_replay(replay);
    println!("GRP reproduction — full evaluation at {scale:?} scale\n");
    // Warm the memo table through the work-stealing cell scheduler:
    // every (benchmark, scheme) cell is an independent unit of work, so
    // a slow benchmark no longer serializes its remaining schemes
    // behind one worker. --jobs / GRP_JOBS caps the pool.
    suite
        .precompute_cells(&suite.all_names(), &Scheme::ALL, jobs)
        .unwrap_or_else(|e| {
            log::error("all", &e);
            std::process::exit(1);
        });
    println!("{}", experiments::figure1(&mut suite));
    let (_, t1) = experiments::table1(&mut suite);
    println!("{t1}");
    println!("{}", experiments::table2());
    println!("{}", experiments::table3(&mut suite));
    println!("{}", experiments::figure9(&mut suite));
    println!("{}", experiments::figure_perf(&mut suite, BenchClass::Int));
    println!("{}", experiments::figure_perf(&mut suite, BenchClass::App));
    println!("{}", experiments::figure_perf(&mut suite, BenchClass::Fp));
    println!("{}", experiments::figure12(&mut suite));
    println!("{}", experiments::table4(&mut suite));
    println!("{}", experiments::table5(&mut suite));
    println!("{}", experiments::table6(&mut suite));
    println!("{}", experiments::sensitivity(&mut suite));
    println!("{}", experiments::bandwidth_study(scale));

    // Optional machine-readable dump of every (benchmark, scheme) run.
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        let mut benches = Vec::new();
        for name in suite.all_names() {
            let base = suite.run(name, Scheme::NoPrefetch);
            let mut runs = Vec::new();
            for scheme in Scheme::ALL {
                let r = suite.run(name, scheme);
                runs.push(run_result_json(&r, Some(&base)));
            }
            benches.push(Json::object().set("bench", name).set("runs", Json::Array(runs)));
        }
        let doc = Json::object()
            .set("scale", format!("{scale:?}"))
            .set("benchmarks", Json::Array(benches));
        grp_bench::artifact::atomic_write(path, doc.render()).expect("write --json output");
        log::info("all", &format!("wrote {path}"));
    }

    // Optional observability pass: traced GRP/Var runs over the perf set.
    let trace_out = flag_value(&args, "--trace-out");
    let metrics_out = flag_value(&args, "--metrics-out");
    if trace_out.is_some() || metrics_out.is_some() {
        let epoch = flag_u64(&args, "--epoch").unwrap_or(4096).max(1);
        let cfg = *suite.config();
        for name in suite.perf_names() {
            log::info("all", &format!("[observe] {name} / GRP/Var…"));
            let obs = ObserverPair(LifecycleTracer::new(), EpochSampler::new(epoch));
            let built = suite.built(name);
            let (_, ObserverPair(t, sampler)) = built.run_observed(Scheme::GrpVar, &cfg, obs);
            let epochs = sampler.snapshots();
            let write = |path: String, body: String| {
                grp_bench::artifact::atomic_write(&path, body).expect("write observability output");
                log::info("all", &format!("wrote {path}"));
            };
            if let Some(prefix) = &trace_out {
                write(format!("{prefix}-{name}.jsonl"), t.jsonl());
                write(
                    format!("{prefix}-{name}.trace.json"),
                    chrome_trace(&t, epochs).render(),
                );
            }
            if let Some(prefix) = &metrics_out {
                write(
                    format!("{prefix}-{name}.metrics.json"),
                    metrics_json(&t, epochs, Some(epoch)).render(),
                );
            }
        }
    }

    // Final registry scrape: everything the run recorded (suite
    // precompute, fleet scheduling, trace cache, I/O faults) in one
    // deterministic text exposition + JSON twin.
    if let Some(path) = flag_value(&args, "--registry-out") {
        exposition::write_registry(telemetry::registry(), &path).unwrap_or_else(|e| {
            log::error("all", &format!("registry export to {path} failed: {e}"));
            std::process::exit(1);
        });
        log::info("all", &format!("wrote {path} (+ {path}.json)"));
    }
}

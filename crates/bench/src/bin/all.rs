//! Reproduces the complete evaluation: every table and figure, sharing
//! one memoized suite. `--scale test|small|paper` selects problem size;
//! `--json <path>` additionally writes machine-readable per-run results.
use grp_bench::json::{run_result_json, Json};
use grp_bench::{experiments, suite::scale_from_args, Suite};
use grp_core::Scheme;
use grp_workloads::BenchClass;

fn main() {
    let scale = scale_from_args();
    let mut suite = Suite::new(scale).verbose();
    println!("GRP reproduction — full evaluation at {scale:?} scale\n");
    // Warm the memo table in parallel: one worker per benchmark.
    suite.precompute(
        &suite.all_names(),
        &[
            grp_core::Scheme::NoPrefetch,
            grp_core::Scheme::Stride,
            grp_core::Scheme::Srp,
            grp_core::Scheme::GrpFix,
            grp_core::Scheme::GrpVar,
            grp_core::Scheme::HwPointer,
            grp_core::Scheme::GrpPointer,
            grp_core::Scheme::GrpAggressive,
            grp_core::Scheme::SrpPointer,
            grp_core::Scheme::GrpConservative,
            grp_core::Scheme::PerfectL1,
            grp_core::Scheme::PerfectL2,
        ],
    );
    println!("{}", experiments::figure1(&mut suite));
    let (_, t1) = experiments::table1(&mut suite);
    println!("{t1}");
    println!("{}", experiments::table2());
    println!("{}", experiments::table3(&mut suite));
    println!("{}", experiments::figure9(&mut suite));
    println!("{}", experiments::figure_perf(&mut suite, BenchClass::Int));
    println!("{}", experiments::figure_perf(&mut suite, BenchClass::App));
    println!("{}", experiments::figure_perf(&mut suite, BenchClass::Fp));
    println!("{}", experiments::figure12(&mut suite));
    println!("{}", experiments::table4(&mut suite));
    println!("{}", experiments::table5(&mut suite));
    println!("{}", experiments::table6(&mut suite));
    println!("{}", experiments::sensitivity(&mut suite));
    println!("{}", experiments::bandwidth_study(scale));

    // Optional machine-readable dump of every (benchmark, scheme) run.
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        let mut benches = Vec::new();
        for name in suite.all_names() {
            let base = suite.run(name, Scheme::NoPrefetch);
            let mut runs = Vec::new();
            for scheme in Scheme::ALL {
                let r = suite.run(name, scheme);
                runs.push(run_result_json(&r, Some(&base)));
            }
            benches.push(Json::object().set("bench", name).set("runs", Json::Array(runs)));
        }
        let doc = Json::object()
            .set("scale", format!("{scale:?}"))
            .set("benchmarks", Json::Array(benches));
        std::fs::write(path, doc.render()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}

//! Ablation benches for the design choices DESIGN.md calls out: prefetch
//! queue depth, LIFO vs FIFO scheduling, LRU vs MRU insertion priority,
//! recursive chase depth, and DRAM channel count.
//!
//! Each configuration is benchmarked for simulator throughput, and its
//! outcome metrics (cycles, traffic) are printed once so the qualitative
//! effect of the knob is visible in the bench log.

use grp_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grp_core::{Scheme, SimConfig};
use grp_workloads::{by_name, Scale};

fn bench_queue_depth(c: &mut Criterion) {
    let built = by_name("equake").unwrap().build(Scale::Test);
    let mut g = c.benchmark_group("ablation_queue_depth");
    g.sample_size(10);
    for depth in [4usize, 16, 32, 128] {
        let mut cfg = SimConfig::paper();
        cfg.prefetch_queue = depth;
        let r = built.run(Scheme::GrpVar, &cfg);
        eprintln!(
            "queue_depth={depth}: cycles={} traffic_blocks={}",
            r.cycles,
            r.traffic.total_blocks()
        );
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| std::hint::black_box(built.run(Scheme::GrpVar, &cfg)))
        });
    }
    g.finish();
}

fn bench_queue_order(c: &mut Criterion) {
    let built = by_name("twolf").unwrap().build(Scale::Test);
    let mut g = c.benchmark_group("ablation_queue_order");
    g.sample_size(10);
    for fifo in [false, true] {
        let mut cfg = SimConfig::paper();
        cfg.fifo_queue = fifo;
        let r = built.run(Scheme::Srp, &cfg);
        eprintln!(
            "fifo={fifo}: cycles={} useful={} traffic={}",
            r.cycles,
            r.l2.useful_prefetches,
            r.traffic.total_blocks()
        );
        let name = if fifo { "fifo" } else { "lifo" };
        g.bench_with_input(BenchmarkId::from_parameter(name), &fifo, |b, _| {
            b.iter(|| std::hint::black_box(built.run(Scheme::Srp, &cfg)))
        });
    }
    g.finish();
}

fn bench_insertion_priority(c: &mut Criterion) {
    // LRU insertion bounds pollution (§3.1); MRU insertion is the ablation.
    let built = by_name("twolf").unwrap().build(Scale::Test);
    let mut g = c.benchmark_group("ablation_insertion");
    g.sample_size(10);
    for mru in [false, true] {
        let mut cfg = SimConfig::paper();
        cfg.prefetch_mru_insert = mru;
        let r = built.run(Scheme::Srp, &cfg);
        eprintln!(
            "mru_insert={mru}: cycles={} l2_misses={}",
            r.cycles,
            r.l2.demand_misses
        );
        let name = if mru { "mru" } else { "lru" };
        g.bench_with_input(BenchmarkId::from_parameter(name), &mru, |b, _| {
            b.iter(|| std::hint::black_box(built.run(Scheme::Srp, &cfg)))
        });
    }
    g.finish();
}

fn bench_recursion_depth(c: &mut Criterion) {
    let built = by_name("ammp").unwrap().build(Scale::Test);
    let mut g = c.benchmark_group("ablation_recursion_depth");
    g.sample_size(10);
    for depth in [1u8, 3, 6] {
        let mut cfg = SimConfig::paper();
        cfg.recursive_depth = depth;
        let r = built.run(Scheme::GrpVar, &cfg);
        eprintln!("recursion_depth={depth}: cycles={}", r.cycles);
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| std::hint::black_box(built.run(Scheme::GrpVar, &cfg)))
        });
    }
    g.finish();
}

fn bench_bandwidth(c: &mut Criterion) {
    // §5.5: art is bandwidth bound; wider channels should pay off.
    let built = by_name("art").unwrap().build(Scale::Test);
    let mut g = c.benchmark_group("ablation_channels");
    g.sample_size(10);
    for channels in [2usize, 4, 8] {
        let mut cfg = SimConfig::paper();
        cfg.dram.channels = channels;
        let r = built.run(Scheme::GrpVar, &cfg);
        eprintln!("channels={channels}: cycles={}", r.cycles);
        g.bench_with_input(BenchmarkId::from_parameter(channels), &channels, |b, _| {
            b.iter(|| std::hint::black_box(built.run(Scheme::GrpVar, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_queue_depth,
    bench_queue_order,
    bench_insertion_priority,
    bench_recursion_depth,
    bench_bandwidth
);
criterion_main!(ablations);

//! Micro-benches: one per table/figure of the paper's evaluation.
//!
//! Each bench regenerates its experiment at Test scale (repeated timed
//! samples make simulator throughput regressions visible); the
//! experiment's *contents* — the paper-shape numbers — are produced by
//! the `src/bin/*` binaries and recorded in EXPERIMENTS.md.

use grp_testkit::bench::{criterion_group, criterion_main, Criterion};
use grp_bench::{experiments, Suite, SuiteScale};
use grp_workloads::BenchClass;

fn suite() -> Suite {
    Suite::new(SuiteScale::Test)
}

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);

    g.bench_function("fig1_perfect_caches", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::figure1(&mut s))
        })
    });
    g.bench_function("table1_summary", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::table1(&mut s))
        })
    });
    g.bench_function("table3_hint_counts", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::table3(&mut s))
        })
    });
    g.bench_function("fig9_pointer", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::figure9(&mut s))
        })
    });
    g.bench_function("fig10_int", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::figure_perf(&mut s, BenchClass::Int))
        })
    });
    g.bench_function("fig11_fp", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::figure_perf(&mut s, BenchClass::Fp))
        })
    });
    g.bench_function("fig12_traffic", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::figure12(&mut s))
        })
    });
    g.bench_function("table4_var_regions", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::table4(&mut s))
        })
    });
    g.bench_function("table5_accuracy_coverage", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::table5(&mut s))
        })
    });
    g.bench_function("table6_miss_causes", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::table6(&mut s))
        })
    });
    g.bench_function("sensitivity_policies", |b| {
        b.iter(|| {
            let mut s = suite();
            std::hint::black_box(experiments::sensitivity(&mut s))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);

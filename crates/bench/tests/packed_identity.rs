//! Packed-vs-materialized determinism gate: the packed replay tier must
//! produce byte-identical results to the enum-event replay for **every**
//! registered kernel under **every** scheme. Any divergence in any
//! counter of any cell fails with the cell named.

use grp_core::{Scheme, SimConfig};
use grp_workloads::Scale;

#[test]
fn packed_replay_matches_materialized_all_kernels_all_schemes() {
    let cfg = SimConfig::paper();
    let kernels = grp_workloads::all();
    assert_eq!(kernels.len(), 18, "grid covers the full registry");
    assert_eq!(Scheme::ALL.len(), 12, "grid covers every scheme");
    for w in kernels {
        let built = w.build(Scale::Test);
        for scheme in Scheme::ALL {
            let materialized = built.run(scheme, &cfg);
            let packed = built.run_packed(scheme, &cfg);
            assert_eq!(
                materialized, packed,
                "{}/{scheme:?}: packed replay diverged",
                w.name
            );
        }
    }
}

//! Telemetry exactness tests: the sharded registry must merge
//! counter-for-counter with a serial reference for any worker count, a
//! scrape racing live updates must never read a torn or regressing
//! view, and every trace-cache corruption class must land in its own
//! labeled miss counter.

use std::sync::Arc;

use grp_bench::sched::{self, ReplayMode, WorkloadCache};
use grp_bench::telemetry::registry::{Registry, Snapshot};
use grp_bench::tracecache::{encode_entry, MissReason, TraceCache};
use grp_core::{Scheme, SimConfig};
use grp_cpu::PackedTrace;
use grp_workloads::Scale;

/// The deterministic counter families the fleet records: everything
/// except wall-clock-derived series (busy/wall micros, utilization,
/// steals, queue-wait buckets), which legitimately vary run to run.
const DETERMINISTIC_FAMILIES: [&str; 5] = [
    "grp_fleet_runs_total",
    "grp_fleet_cells_total",
    "grp_fleet_cell_errors_total",
    "grp_replay_events_total",
    "grp_sim_cycles_total",
];

fn deterministic_counters(snap: &Snapshot) -> Vec<(String, u64)> {
    snap.counters
        .iter()
        .filter(|(id, _)| {
            DETERMINISTIC_FAMILIES
                .iter()
                .any(|f| grp_bench::telemetry::registry::family(id) == *f)
        })
        .map(|(id, v)| (id.clone(), *v))
        .collect()
}

fn run_grid(workers: usize) -> Snapshot {
    let cfg = SimConfig::paper();
    let names = ["twolf", "crafty", "gzip", "mcf"];
    let schemes = [Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar];
    let jobs = sched::grid_jobs(&names, &schemes, Scale::Test, cfg);
    let reg = Arc::new(Registry::new());
    let mode = ReplayMode::default().with_telemetry(reg.clone());
    let cache = WorkloadCache::new();
    sched::run_cells_mode(&jobs, workers, &cache, &mode, |_| {});
    reg.snapshot()
}

/// The satellite acceptance test: an N-worker run's merged counters
/// equal the 1-worker (serial) run's counters exactly, for every
/// deterministic family — per-label-set, not just in total. The
/// queue-wait histogram must also account for every cell in both runs.
#[test]
fn sharded_merge_equals_serial_counter_for_counter() {
    let serial = run_grid(1);
    let fleet = run_grid(3);

    let a = deterministic_counters(&serial);
    let b = deterministic_counters(&fleet);
    assert!(!a.is_empty(), "the run recorded deterministic counters");
    assert_eq!(a, b, "3-worker merge diverged from the serial reference");

    for snap in [&serial, &fleet] {
        assert_eq!(snap.counter("grp_fleet_runs_total"), 1);
        assert_eq!(snap.family_total("grp_fleet_cells_total"), 12);
        assert_eq!(snap.family_total("grp_fleet_cell_errors_total"), 0);
        assert_eq!(
            snap.counter("grp_fleet_cells_total{bench=\"mcf\",scheme=\"GRP/Var\"}"),
            1
        );
        let q = snap.hists.get("grp_fleet_queue_wait_micros").expect("queue-wait histogram");
        assert_eq!(q.count(), 12, "one queue-wait sample per cell");
    }
}

/// Scraping while another thread updates must always observe a
/// consistent, monotone view: every scrape's counter is between 0 and
/// the final total, scrapes never regress, and each histogram's count
/// always equals the sum of its buckets (the merge derives one from
/// the other, so a torn read would break the equality).
#[test]
fn scrape_during_update_is_monotone_and_untorn() {
    const N: u64 = 200_000;
    let reg = Arc::new(Registry::new());
    let shard = reg.shard();
    let writer = {
        let shard = Arc::clone(&shard);
        std::thread::spawn(move || {
            let c = shard.counter("race_total", &[]);
            let h = shard.hist("race_micros", &[]);
            for i in 0..N {
                c.inc();
                h.record(i % 1024);
            }
        })
    };
    let mut last = 0u64;
    while !writer.is_finished() {
        let snap = reg.snapshot();
        let now = snap.counter("race_total");
        assert!(now >= last, "scrape regressed: {last} -> {now}");
        assert!(now <= N);
        if let Some(h) = snap.hists.get("race_micros") {
            let bucket_sum: u64 = h.buckets().iter().sum();
            assert_eq!(h.count(), bucket_sum, "histogram count != bucket sum (torn scrape)");
        }
        last = now;
    }
    writer.join().expect("writer thread");
    let fin = reg.snapshot();
    assert_eq!(fin.counter("race_total"), N);
    assert_eq!(fin.hists["race_micros"].count(), N);
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Rewrites the entry's trailing checksum so an upstream corruption
/// (magic, version) is the first failure the decoder sees.
fn rechecksum(mut bytes: Vec<u8>) -> Vec<u8> {
    let body = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    bytes
}

/// Each corruption class increments its own labeled
/// `grp_tracecache_misses_total{reason=…}` counter in the process
/// registry (this integration binary is its own process, so the global
/// registry deltas here are exactly this test's).
#[test]
fn tracecache_corruption_classes_count_separately() {
    let dir = std::env::temp_dir().join(format!("grp-telemetry-cc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = TraceCache::new(&dir);

    let built = grp_workloads::by_name("twolf").expect("registered").build(Scale::Test);
    let (trace, mem) = built.trace(None);
    let pt = PackedTrace::pack(&trace).expect("packs");
    let good = encode_entry(&pt, &mem, built.heap);
    let path = cache.entry_path("twolf", Scale::Test, None);

    let miss = |reason: MissReason| {
        format!("grp_tracecache_misses_total{{reason=\"{}\"}}", reason.label())
    };
    let count = |id: &str| grp_bench::telemetry::registry().snapshot().counter(id);
    let load = || cache.load("twolf", Scale::Test, None);

    // Cold cache: absent.
    let before = count(&miss(MissReason::Absent));
    assert!(load().is_none());
    assert_eq!(count(&miss(MissReason::Absent)), before + 1);

    // A valid entry: one hit.
    std::fs::create_dir_all(&dir).expect("cache dir");
    std::fs::write(&path, &good).expect("write entry");
    let hits = count("grp_tracecache_hits_total");
    assert!(load().is_some());
    assert_eq!(count("grp_tracecache_hits_total"), hits + 1);

    // Every corruption class lands in its own labeled counter.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let mut magic = good.clone();
    magic[0] ^= 0xff;
    let mut stale = good.clone();
    stale[4..8].copy_from_slice(&99u32.to_le_bytes());
    let cases: Vec<(MissReason, Vec<u8>)> = vec![
        (MissReason::ChecksumMismatch, flipped),
        (MissReason::BadMagic, rechecksum(magic)),
        (MissReason::StaleVersion, rechecksum(stale)),
        (MissReason::Truncated, good[..4].to_vec()),
        (MissReason::TrailingBytes, {
            let mut long = good[..good.len() - 8].to_vec();
            long.extend_from_slice(&[0, 0, 0]);
            rechecksum({
                long.extend_from_slice(&[0; 8]);
                long
            })
        }),
    ];
    for (reason, bytes) in cases {
        std::fs::write(&path, &bytes).expect("write corrupted entry");
        let id = miss(reason);
        let before = count(&id);
        assert!(load().is_none(), "{reason:?} entry must read as a miss");
        assert_eq!(count(&id), before + 1, "{reason:?} must count under its own label");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Fleet-scheduler determinism regression tests: sharding the full
//! kernel × scheme grid across work-stealing workers must produce
//! per-cell results **bit-identical** to the serial path — for any
//! worker count, any steal order, and with built workloads shared
//! read-only across the schemes of a kernel.

use std::collections::HashMap;

use grp_bench::sched::{self, WorkloadCache};
use grp_bench::{Suite, SuiteScale};
use grp_core::{RunResult, Scheme, SimConfig};
use grp_workloads::{all, Scale};

/// The serial reference: every cell of the full grid run one at a time
/// on the calling thread, sharing one build per kernel.
fn serial_grid(cfg: &SimConfig) -> HashMap<(&'static str, Scheme), RunResult> {
    let mut reference = HashMap::new();
    for w in all() {
        let built = w.build(Scale::Test);
        for scheme in Scheme::ALL {
            reference.insert((w.name, scheme), built.run(scheme, cfg));
        }
    }
    reference
}

/// The tentpole acceptance test: the full 18 × 12 grid through the
/// fleet scheduler at worker counts 1, 3, and available parallelism —
/// every cell's `RunResult` must equal the serial reference to the bit,
/// every cell must complete exactly once, and the schemes of a kernel
/// must share one build.
#[test]
fn fleet_grid_bit_identical_to_serial_for_every_worker_count() {
    let cfg = SimConfig::paper();
    let reference = serial_grid(&cfg);
    let names: Vec<&'static str> = all().iter().map(|w| w.name).collect();
    let jobs = sched::grid_jobs(&names, &Scheme::ALL, Scale::Test, cfg);
    assert_eq!(jobs.len(), names.len() * Scheme::ALL.len());

    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    for workers in [1, 3, parallelism] {
        let cache = WorkloadCache::new();
        let mut seen: HashMap<(&'static str, Scheme), RunResult> = HashMap::new();
        let stats = sched::run_cells(&jobs, workers, &cache, |cell| {
            let r = cell
                .outcome
                .unwrap_or_else(|e| panic!("{}/{} failed: {e}", cell.kernel, cell.scheme));
            let prev = seen.insert((cell.kernel, cell.scheme), r);
            assert!(
                prev.is_none(),
                "{}/{} completed twice under {workers} worker(s)",
                cell.kernel,
                cell.scheme
            );
        });
        assert_eq!(stats.cells, jobs.len(), "cell count with {workers} worker(s)");
        assert_eq!(stats.errors, 0);
        assert_eq!(
            cache.built_count(),
            names.len(),
            "one build per kernel with {workers} worker(s)"
        );
        assert_eq!(
            seen.len(),
            reference.len(),
            "grid coverage with {workers} worker(s)"
        );
        for (key, want) in &reference {
            assert_eq!(
                seen.get(key),
                Some(want),
                "{}/{} diverged from serial under {workers} worker(s)",
                key.0,
                key.1
            );
        }
    }
}

/// An unknown kernel fails its own cells with a named error while every
/// other cell still completes and stays bit-identical to serial.
#[test]
fn unknown_kernel_fails_alone() {
    let cfg = SimConfig::paper();
    let names = ["gzip", "no-such-kernel", "mcf"];
    let schemes = [Scheme::NoPrefetch, Scheme::Srp];
    let jobs = sched::grid_jobs(&names, &schemes, Scale::Test, cfg);

    let cache = WorkloadCache::new();
    let mut ok = 0usize;
    let mut failed: Vec<(&'static str, String)> = Vec::new();
    let stats = sched::run_cells(&jobs, 2, &cache, |cell| match cell.outcome {
        Ok(r) => {
            let want = grp_workloads::by_name(cell.kernel)
                .expect("known kernel")
                .build(Scale::Test)
                .run(cell.scheme, &cfg);
            assert_eq!(r, want, "{}/{} diverged", cell.kernel, cell.scheme);
            ok += 1;
        }
        Err(e) => failed.push((cell.kernel, e)),
    });
    assert_eq!(ok, 4, "both schemes of both real kernels complete");
    assert_eq!(failed.len(), 2, "both cells of the bogus kernel fail");
    assert_eq!(stats.errors, 2);
    for (kernel, e) in &failed {
        assert_eq!(*kernel, "no-such-kernel");
        assert!(e.contains("no-such-kernel"), "error names the kernel: {e}");
    }
}

/// Results stream through `on_complete` exactly once per job with the
/// caller's ids, and per-cell timing/attribution fields are populated.
#[test]
fn streaming_delivers_every_cell_exactly_once() {
    let cfg = SimConfig::paper();
    let names = ["gzip", "mcf", "art"];
    let schemes = [Scheme::NoPrefetch, Scheme::Stride, Scheme::GrpVar];
    let jobs = sched::grid_jobs(&names, &schemes, Scale::Test, cfg);
    let expected_ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();

    let cache = WorkloadCache::new();
    let mut delivered: Vec<u64> = Vec::new();
    let stats = sched::run_cells(&jobs, 3, &cache, |cell| {
        assert!(cell.outcome.is_ok());
        assert!(cell.events > 0, "events populated for {}", cell.kernel);
        assert!(cell.replay_seconds >= 0.0);
        assert!(cell.worker < 3, "worker id in range");
        delivered.push(cell.id);
    });
    delivered.sort_unstable();
    let mut want = expected_ids;
    want.sort_unstable();
    assert_eq!(delivered, want, "every id delivered exactly once");
    assert_eq!(stats.cells, delivered.len());
    assert!(stats.queue_wait_micros.count() == delivered.len() as u64);
}

/// `Suite::precompute_cells` warms the memo table with results
/// bit-identical to the serial `Suite::run` path (a fresh suite, no
/// precompute), regardless of worker count.
#[test]
fn suite_precompute_cells_matches_serial_suite() {
    let names = ["gzip", "swim", "equake"];
    let schemes = [Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar];

    let mut serial = Suite::new(SuiteScale::Test);
    let mut fleet = Suite::new(SuiteScale::Test);
    fleet
        .precompute_cells(&names, &schemes, Some(2))
        .expect("precompute_cells succeeds");
    for name in names {
        for scheme in schemes {
            assert_eq!(
                fleet.run(name, scheme),
                serial.run(name, scheme),
                "{name}/{scheme} diverged between fleet precompute and serial run"
            );
        }
    }
}

/// The deal is driven by [`sched::cell_weight`]; after the packed-tier
/// recalibration the table must still rank the measured-heavy cells
/// first so every worker opens on one of the biggest cells.
#[test]
fn dealing_stays_largest_first_under_the_packed_cost_model() {
    // (bzip2, SRP-class) is the measured heaviest cell of the grid.
    let heaviest = sched::cell_weight("bzip2", Scheme::Srp);
    for w in all() {
        for scheme in Scheme::ALL {
            assert!(
                sched::cell_weight(w.name, scheme) <= heaviest,
                "{}/{scheme} outweighs the known-heaviest cell",
                w.name
            );
        }
    }
    // Relative spot-checks straight off the measured packed replay wall.
    assert!(sched::cell_weight("bzip2", Scheme::Srp) > sched::cell_weight("swim", Scheme::Srp));
    assert!(
        sched::cell_weight("swim", Scheme::NoPrefetch)
            > sched::cell_weight("mcf", Scheme::NoPrefetch)
    );
    assert!(sched::cell_weight("gzip", Scheme::Srp) > sched::cell_weight("gzip", Scheme::GrpVar));
    assert!(
        sched::cell_weight("gzip", Scheme::GrpVar) > sched::cell_weight("gzip", Scheme::NoPrefetch)
    );
    assert!(
        sched::cell_weight("gzip", Scheme::NoPrefetch)
            > sched::cell_weight("gzip", Scheme::PerfectL1)
    );
    // largest_first reorders through the same table, so the heaviest
    // kernel leads regardless of submission order.
    let order = sched::largest_first(&["mcf", "swim", "bzip2", "crafty"]);
    assert_eq!(order[0], "bzip2");
}

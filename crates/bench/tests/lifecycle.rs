//! Lifecycle-conservation regression tests: the observer layer must
//! account for every prefetch the simulator issues, and its derived
//! accuracy/coverage must reproduce [`grp_core::RunResult`]'s own
//! metrics to the bit — on every kernel under every scheme.

use grp_bench::json::Json;
use grp_bench::obs_export::{chrome_trace, metrics_json};
use grp_core::{EpochSampler, LifecycleTracer, ObserverPair, Scheme, SimConfig};
use grp_workloads::{all, Scale};

/// Every kernel × every scheme at test scale: conservation
/// (`issued == first_used + late + evicted_unused + resident_at_end +
/// in_flight_at_end`), counter-for-counter agreement with the
/// simulator, and bit-exact accuracy/coverage.
#[test]
fn conservation_and_counter_agreement_everywhere() {
    let cfg = SimConfig::paper();
    for w in all() {
        let built = w.build(Scale::Test);
        let base = built.run(Scheme::NoPrefetch, &cfg);
        for scheme in Scheme::ALL {
            let (r, t) = built.run_observed(scheme, &cfg, LifecycleTracer::new());
            let ctx = format!("{} / {}", w.name, scheme);
            assert_eq!(
                t.issued(),
                t.first_used()
                    + t.late()
                    + t.evicted_unused()
                    + t.resident_at_end()
                    + t.in_flight_at_end(),
                "lifecycle conservation violated for {ctx}"
            );
            assert_eq!(t.issued(), r.prefetches_issued, "issued mismatch for {ctx}");
            assert_eq!(
                t.first_used(),
                r.l2.useful_prefetches,
                "first-use mismatch for {ctx}"
            );
            assert_eq!(
                t.evicted_unused(),
                r.l2.useless_prefetches,
                "unused-eviction mismatch for {ctx}"
            );
            assert_eq!(
                t.resident_at_end(),
                r.resident_unused_prefetches,
                "resident-tail mismatch for {ctx}"
            );
            assert_eq!(t.late(), r.late_prefetch_merges, "late mismatch for {ctx}");
            assert_eq!(
                t.demand_misses(),
                r.l2.demand_misses,
                "demand-miss mismatch for {ctx}"
            );
            assert_eq!(
                t.accuracy().to_bits(),
                r.accuracy().to_bits(),
                "accuracy not bit-exact for {ctx}: {} vs {}",
                t.accuracy(),
                r.accuracy()
            );
            assert_eq!(
                t.coverage_vs_misses(base.l2_misses()).to_bits(),
                r.coverage_vs(&base).to_bits(),
                "coverage not bit-exact for {ctx}"
            );
            // Every record ends with a decided outcome and timestamp.
            for rec in t.records() {
                assert!(
                    rec.outcome.is_some() && rec.outcome_at.is_some(),
                    "undecided record in {ctx}: {rec:?}"
                );
            }
        }
    }
}

/// The exported artifacts must round-trip through the in-tree JSON
/// reader: the Chrome trace document, the metrics document, and every
/// JSONL line.
#[test]
fn exports_roundtrip_through_the_json_reader() {
    let cfg = SimConfig::paper();
    let w = grp_workloads::by_name("gzip").expect("gzip exists");
    let built = w.build(Scale::Test);
    let obs = ObserverPair(LifecycleTracer::new(), EpochSampler::new(512));
    let (_, ObserverPair(t, sampler)) = built.run_observed(Scheme::GrpVar, &cfg, obs);
    assert!(t.issued() > 0, "gzip GRP/Var must issue prefetches");
    assert!(!sampler.snapshots().is_empty(), "expected epoch snapshots");

    let trace_doc = chrome_trace(&t, sampler.snapshots());
    let parsed = Json::parse(&trace_doc.render()).expect("chrome trace parses");
    // Whole-valued floats re-parse as integers, so round-trip equality
    // is at the rendered-text level.
    assert_eq!(parsed.render(), trace_doc.render(), "chrome trace round-trips");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(events.len() > t.issued() as usize, "slices + metadata + counters");

    let metrics_doc = metrics_json(&t, sampler.snapshots(), Some(512));
    let parsed = Json::parse(&metrics_doc.render()).expect("metrics parse");
    assert_eq!(parsed.render(), metrics_doc.render(), "metrics round-trip");
    assert_eq!(
        parsed.get("summary").and_then(|s| s.get("issued")).and_then(Json::as_u64),
        Some(t.issued())
    );

    for (i, line) in t.jsonl().lines().enumerate() {
        let rec = Json::parse(line).unwrap_or_else(|e| panic!("jsonl line {}: {e}", i + 1));
        assert!(rec.get("block").is_some() && rec.get("outcome").is_some());
    }
}

/// Epoch snapshots are cumulative and monotone: later epochs never
/// report fewer events, cycles, or issued prefetches, and the epoch
/// cadence follows the configured interval.
#[test]
fn epoch_series_is_monotone_and_on_cadence() {
    let cfg = SimConfig::paper();
    let w = grp_workloads::by_name("swim").expect("swim exists");
    let built = w.build(Scale::Test);
    let (r, sampler) = built.run_observed(Scheme::GrpVar, &cfg, EpochSampler::new(256));
    let snaps = sampler.snapshots();
    assert!(snaps.len() >= 2, "expected several epochs, got {}", snaps.len());
    for pair in snaps.windows(2) {
        assert!(pair[0].events <= pair[1].events);
        assert!(pair[0].cycles <= pair[1].cycles);
        assert!(pair[0].prefetches_issued <= pair[1].prefetches_issued);
        assert!(pair[0].l2_demand_misses <= pair[1].l2_demand_misses);
    }
    // All but the final (end-of-run) snapshot land exactly on the
    // interval boundary.
    for s in &snaps[..snaps.len() - 1] {
        assert_eq!(s.events % 256, 0, "epoch off cadence at {}", s.events);
    }
    let last = snaps.last().expect("nonempty");
    assert_eq!(
        last.prefetches_issued, r.prefetches_issued,
        "final epoch sees the complete run"
    );
    assert_eq!(last.l2_demand_misses, r.l2.demand_misses);
}

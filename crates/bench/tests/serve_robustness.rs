//! End-to-end robustness tests for the replay server over a real unix
//! socket, driving the actual `serve` binary as a subprocess: a client
//! that disconnects mid-batch must not take the process down, malformed
//! or truncated request lines fail only themselves, and the in-band
//! `{"drain":true}` probe flushes everything and exits 0.
//!
//! The full storm (seeded I/O faults × kill -9 × restart carryover)
//! lives in `check --chaos`; these tests pin the per-session contract
//! at a size that fits the unit-test budget.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use grp_bench::json::Json;

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grp-serve-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawns the real serve binary on `sock` at test scale with the
/// hardening knobs engaged (generous deadline so nothing expires).
fn spawn_serve(sock: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--scale", "test", "--jobs", "2"])
        .arg("--socket")
        .arg(sock)
        .args(["--request-deadline-ms", "60000", "--max-inflight", "64"])
        .args(["--log-level", "error"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve binary")
}

/// Connects once the server is accepting, failing fast if it died.
fn connect(sock: &Path, child: &mut Child) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(conn) = UnixStream::connect(sock) {
            conn.set_read_timeout(Some(Duration::from_secs(120))).expect("read timeout");
            return conn;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("serve exited before accepting: {status}");
        }
        assert!(Instant::now() < deadline, "serve never started accepting on {sock:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Sends raw request lines, then a blank line to flush the batch.
fn send_batch(conn: &mut UnixStream, lines: &[&str]) {
    for line in lines {
        writeln!(conn, "{line}").expect("send request line");
    }
    writeln!(conn).expect("send flush line");
    conn.flush().expect("flush requests");
}

/// Reads exactly `n` reply documents.
fn read_replies(reader: &mut BufReader<UnixStream>, n: usize) -> Vec<Json> {
    let mut replies = Vec::new();
    let mut line = String::new();
    while replies.len() < n {
        line.clear();
        let got = reader.read_line(&mut line).expect("read reply line");
        assert!(got > 0, "server closed the stream after {} of {n} replies", replies.len());
        replies.push(Json::parse(line.trim()).expect("parse reply"));
    }
    replies
}

/// The reply with `"id": id`, which must be present exactly once.
fn reply_by_id(replies: &[Json], id: u64) -> Json {
    let matched: Vec<&Json> = replies
        .iter()
        .filter(|r| r.get("id").and_then(Json::as_u64) == Some(id))
        .collect();
    assert_eq!(matched.len(), 1, "expected exactly one reply with id {id}: {replies:?}");
    matched[0].clone()
}

fn is_ok(reply: &Json) -> bool {
    reply.get("ok").and_then(Json::as_bool) == Some(true)
}

/// Drains the server through the in-band probe and asserts a clean
/// exit 0 within the timeout.
fn drain_and_wait(conn: &mut UnixStream, reader: &mut BufReader<UnixStream>, child: &mut Child) {
    writeln!(conn, "{{\"drain\":true,\"id\":9000}}").expect("send drain");
    conn.flush().expect("flush drain");
    let ack = &read_replies(reader, 1)[0];
    assert!(is_ok(ack), "drain ack not ok: {ack:?}");
    assert_eq!(ack.get("drain").and_then(Json::as_bool), Some(true), "drain ack: {ack:?}");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert!(status.success(), "drained server exited nonzero: {status}");
            return;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("server did not exit within 60s of the drain ack");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A client that vanishes mid-batch (jobs sent, no flush line, socket
/// dropped) must cost the server nothing but that batch: the next
/// connection gets bit-for-bit normal service and the drain probe
/// still exits 0.
#[test]
fn client_disconnect_mid_batch_leaves_the_server_serving() {
    let dir = scratch("disconnect");
    let sock = dir.join("serve.sock");
    let mut child = spawn_serve(&sock);

    {
        let mut conn = connect(&sock, &mut child);
        writeln!(conn, "{{\"id\":1,\"kernel\":\"gzip\",\"scheme\":\"SRP\"}}")
            .expect("send abandoned job");
        conn.flush().expect("flush abandoned job");
        // Drop without the blank line: the server sees EOF mid-batch.
    }

    let conn = connect(&sock, &mut child);
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut conn = conn;
    send_batch(&mut conn, &["{\"id\":2,\"kernel\":\"gzip\",\"scheme\":\"SRP\"}"]);
    let replies = read_replies(&mut reader, 1);
    let reply = reply_by_id(&replies, 2);
    assert!(is_ok(&reply), "post-disconnect job failed: {reply:?}");
    assert_eq!(reply.get("bench").and_then(Json::as_str), Some("gzip"));
    drain_and_wait(&mut conn, &mut reader, &mut child);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed lines — truncated JSON and an unknown field — must each
/// earn a named error reply without poisoning the valid job sharing
/// their batch or the session that follows.
#[test]
fn malformed_request_lines_fail_only_themselves() {
    let dir = scratch("malformed");
    let sock = dir.join("serve.sock");
    let mut child = spawn_serve(&sock);

    let conn = connect(&sock, &mut child);
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut conn = conn;
    send_batch(
        &mut conn,
        &[
            "{\"id\":1,\"kernel\":\"gzip\",\"scheme\":\"SRP\"}",
            "{\"id\":2,\"kernel\":\"gzip\",",
            "{\"id\":3,\"kernel\":\"gzip\",\"scheme\":\"SRP\",\"bogus\":1}",
        ],
    );
    let replies = read_replies(&mut reader, 3);
    let good = reply_by_id(&replies, 1);
    assert!(is_ok(&good), "valid job dragged down by its batch: {good:?}");
    let errors: Vec<&Json> = replies.iter().filter(|r| !is_ok(r)).collect();
    assert_eq!(errors.len(), 2, "expected two error replies: {replies:?}");
    for e in errors {
        let msg = e.get("error").and_then(Json::as_str).expect("error field");
        assert!(!msg.is_empty());
    }

    // The session survives: a clean follow-up batch still runs.
    send_batch(&mut conn, &["{\"id\":4,\"kernel\":\"mcf\",\"scheme\":\"none\"}"]);
    let replies = read_replies(&mut reader, 1);
    assert!(is_ok(&reply_by_id(&replies, 4)));
    drain_and_wait(&mut conn, &mut reader, &mut child);
    let _ = std::fs::remove_dir_all(&dir);
}

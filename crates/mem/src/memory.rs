//! Sparse functional memory.
//!
//! GRP's pointer prefetcher scans *returned data* for values that land in
//! the heap range (paper §3.2), and the indirect engine reads the index
//! array `b[i]` to compute `&a[0] + s * b[i]` (§3.3.3). Both require the
//! simulator to model memory contents, not just an address trace. This
//! module provides a paged, lazily-populated byte store over the full
//! 64-bit address space.

use crate::addr::{Addr, BlockAddr, BLOCK_BYTES};
use crate::fasthash::FastMap;

const PAGE_SHIFT: u32 = 12;

/// Size of one functional-memory page — the unit of the snapshot API
/// ([`Memory::snapshot_pages`] / [`Memory::restore_page`]).
pub const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// A sparse functional memory. Unwritten bytes read as zero.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: FastMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl Memory {
    /// Creates an empty memory; all bytes read as zero until written.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (touched) 4 KB pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, a: Addr) -> Option<&[u8; PAGE_BYTES]> {
        self.pages.get(&(a.0 >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, a: Addr) -> &mut [u8; PAGE_BYTES] {
        self.pages
            .entry(a.0 >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, a: Addr) -> u8 {
        match self.page(a) {
            Some(p) => p[(a.0 as usize) & (PAGE_BYTES - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, a: Addr, v: u8) {
        let off = (a.0 as usize) & (PAGE_BYTES - 1);
        self.page_mut(a)[off] = v;
    }

    /// Reads a little-endian value of `N` bytes. Accesses may straddle page
    /// boundaries (they never straddle them in practice for aligned data).
    fn read_le<const N: usize>(&self, a: Addr) -> [u8; N] {
        let off = (a.0 as usize) & (PAGE_BYTES - 1);
        let mut out = [0u8; N];
        if off + N <= PAGE_BYTES {
            if let Some(p) = self.page(a) {
                out.copy_from_slice(&p[off..off + N]);
            }
        } else {
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(a.offset(i as i64));
            }
        }
        out
    }

    fn write_le<const N: usize>(&mut self, a: Addr, bytes: [u8; N]) {
        let off = (a.0 as usize) & (PAGE_BYTES - 1);
        if off + N <= PAGE_BYTES {
            self.page_mut(a)[off..off + N].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(a.offset(i as i64), *b);
            }
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, a: Addr) -> u16 {
        u16::from_le_bytes(self.read_le(a))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, a: Addr, v: u16) {
        self.write_le(a, v.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, a: Addr) -> u32 {
        u32::from_le_bytes(self.read_le(a))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, a: Addr, v: u32) {
        self.write_le(a, v.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, a: Addr) -> u64 {
        u64::from_le_bytes(self.read_le(a))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, a: Addr, v: u64) {
        self.write_le(a, v.to_le_bytes());
    }

    /// Reads an `i32` (two's complement little-endian).
    pub fn read_i32(&self, a: Addr) -> i32 {
        self.read_u32(a) as i32
    }

    /// Writes an `i32`.
    pub fn write_i32(&mut self, a: Addr, v: i32) {
        self.write_u32(a, v as u32);
    }

    /// Reads an `i64`.
    pub fn read_i64(&self, a: Addr) -> i64 {
        self.read_u64(a) as i64
    }

    /// Writes an `i64`.
    pub fn write_i64(&mut self, a: Addr, v: i64) {
        self.write_u64(a, v as u64);
    }

    /// Reads an `f32`.
    pub fn read_f32(&self, a: Addr) -> f32 {
        f32::from_bits(self.read_u32(a))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, a: Addr, v: f32) {
        self.write_u32(a, v.to_bits());
    }

    /// Reads an `f64`.
    pub fn read_f64(&self, a: Addr) -> f64 {
        f64::from_bits(self.read_u64(a))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, a: Addr, v: f64) {
        self.write_u64(a, v.to_bits());
    }

    /// Returns the eight aligned 64-bit words of a cache block, exactly as
    /// the GRP pointer-scan hardware sees them ("pointers are aligned
    /// 8-byte entities; thus the engine must check only eight values out of
    /// each 64-byte cache block", §3.2).
    pub fn read_block_words(&self, b: BlockAddr) -> [u64; 8] {
        let base = b.base();
        let mut out = [0u64; 8];
        for (i, w) in out.iter_mut().enumerate() {
            *w = self.read_u64(base.offset(i as i64 * 8));
        }
        out
    }

    /// Returns the sixteen aligned 32-bit words of a cache block, as read by
    /// the indirect-array engine (index element size 4, §3.3.3).
    pub fn read_block_words_u32(&self, b: BlockAddr) -> [u32; 16] {
        let base = b.base();
        let mut out = [0u32; 16];
        for (i, w) in out.iter_mut().enumerate() {
            *w = self.read_u32(base.offset(i as i64 * 4));
        }
        out
    }

    /// Resident pages as `(page_id, bytes)` sorted by page id — a
    /// deterministic, byte-stable serialization order for persisting a
    /// memory image (the trace cache stores the post-interpretation
    /// memory this way). `page_id << 12` is the page's base address.
    pub fn snapshot_pages(&self) -> Vec<(u64, &[u8; PAGE_BYTES])> {
        let mut pages: Vec<(u64, &[u8; PAGE_BYTES])> =
            self.pages.iter().map(|(id, b)| (*id, &**b)).collect();
        pages.sort_unstable_by_key(|(id, _)| *id);
        pages
    }

    /// Installs one page wholesale at `page_id` (inverse of
    /// [`Memory::snapshot_pages`]), replacing any resident page there.
    pub fn restore_page(&mut self, page_id: u64, bytes: &[u8; PAGE_BYTES]) {
        self.pages.insert(page_id, Box::new(*bytes));
    }

    /// Fills `[a, a + len)` with zero, forcing the pages resident.
    pub fn zero_fill(&mut self, a: Addr, len: u64) {
        let mut cur = a.0;
        let end = a.0 + len;
        while cur < end {
            let page_end = (cur | (PAGE_BYTES as u64 - 1)) + 1;
            let chunk_end = page_end.min(end);
            let p = self.page_mut(Addr(cur));
            let lo = (cur as usize) & (PAGE_BYTES - 1);
            let hi = lo + (chunk_end - cur) as usize;
            p[lo..hi].fill(0);
            cur = chunk_end;
        }
    }
}

/// Block size re-exported for convenience in byte math.
pub const BLOCK: u64 = BLOCK_BYTES;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(Addr(0x4000)), 0);
        assert_eq!(m.read_u8(Addr(12345)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn round_trip_scalars() {
        let mut m = Memory::new();
        m.write_u8(Addr(1), 0xab);
        m.write_u16(Addr(2), 0xbeef);
        m.write_u32(Addr(4), 0xdead_beef);
        m.write_u64(Addr(8), 0x0123_4567_89ab_cdef);
        m.write_i32(Addr(16), -42);
        m.write_i64(Addr(24), -1_000_000_007);
        m.write_f32(Addr(32), 3.5);
        m.write_f64(Addr(40), -2.25);
        assert_eq!(m.read_u8(Addr(1)), 0xab);
        assert_eq!(m.read_u16(Addr(2)), 0xbeef);
        assert_eq!(m.read_u32(Addr(4)), 0xdead_beef);
        assert_eq!(m.read_u64(Addr(8)), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_i32(Addr(16)), -42);
        assert_eq!(m.read_i64(Addr(24)), -1_000_000_007);
        assert_eq!(m.read_f32(Addr(32)), 3.5);
        assert_eq!(m.read_f64(Addr(40)), -2.25);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let a = Addr(PAGE_BYTES as u64 - 3);
        m.write_u64(a, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(a), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn block_words_match_u64_layout() {
        let mut m = Memory::new();
        let base = Addr(0x10_0000);
        for i in 0..8 {
            m.write_u64(base.offset(i * 8), 100 + i as u64);
        }
        let words = m.read_block_words(base.block());
        assert_eq!(words, [100, 101, 102, 103, 104, 105, 106, 107]);
    }

    #[test]
    fn block_words_u32_match_layout() {
        let mut m = Memory::new();
        let base = Addr(0x20_0000);
        for i in 0..16 {
            m.write_u32(base.offset(i * 4), i as u32 * 3);
        }
        let words = m.read_block_words_u32(base.block());
        for (i, w) in words.iter().enumerate() {
            assert_eq!(*w, i as u32 * 3);
        }
    }

    #[test]
    fn zero_fill_clears_previous_data() {
        let mut m = Memory::new();
        m.write_u64(Addr(0x8000), u64::MAX);
        m.write_u64(Addr(0x9000 - 8), u64::MAX);
        m.zero_fill(Addr(0x8000), 0x1000);
        assert_eq!(m.read_u64(Addr(0x8000)), 0);
        assert_eq!(m.read_u64(Addr(0x9000 - 8)), 0);
    }

    #[test]
    fn snapshot_round_trips_sorted_by_page_id() {
        let mut m = Memory::new();
        // Touch pages out of id order; the snapshot must come back sorted.
        m.write_u64(Addr(0x9000), 7);
        m.write_u64(Addr(0x2000), 5);
        m.write_u64(Addr(0x5ffc), 6); // straddles pages 5 and 6
        let pages = m.snapshot_pages();
        let ids: Vec<u64> = pages.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2, 5, 6, 9], "sorted, one entry per resident page");
        let mut restored = Memory::new();
        for (id, bytes) in pages {
            restored.restore_page(id, bytes);
        }
        assert_eq!(restored.resident_pages(), m.resident_pages());
        assert_eq!(restored.read_u64(Addr(0x9000)), 7);
        assert_eq!(restored.read_u64(Addr(0x2000)), 5);
        assert_eq!(restored.read_u64(Addr(0x5ffc)), 6);
        assert_eq!(restored.read_u64(Addr(0x4242_0000)), 0, "untouched stays zero");
    }

    #[test]
    fn zero_fill_spans_pages() {
        let mut m = Memory::new();
        m.zero_fill(Addr(0x1ff8), 0x2010);
        assert!(m.resident_pages() >= 3);
    }
}

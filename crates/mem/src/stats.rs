//! Memory-traffic accounting.
//!
//! The paper's headline traffic numbers (Table 1, Figure 12, Table 5)
//! count total memory traffic — demand fetches, prefetches, and
//! writebacks — and report each scheme normalized to the no-prefetching
//! system. [`TrafficStats`] is that ledger.

use crate::addr::BLOCK_BYTES;
use crate::dram::DramStats;

/// Total bus traffic for one simulation, in blocks by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Blocks fetched on demand misses.
    pub demand_blocks: u64,
    /// Blocks fetched by the prefetch engine.
    pub prefetch_blocks: u64,
    /// Dirty blocks written back.
    pub writeback_blocks: u64,
}

impl TrafficStats {
    /// Builds the ledger from the DRAM's per-kind counters.
    pub fn from_dram(d: &DramStats) -> Self {
        Self {
            demand_blocks: d.demand_blocks,
            prefetch_blocks: d.prefetch_blocks,
            writeback_blocks: d.writeback_blocks,
        }
    }

    /// Total blocks moved.
    pub fn total_blocks(&self) -> u64 {
        self.demand_blocks + self.prefetch_blocks + self.writeback_blocks
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.total_blocks() * BLOCK_BYTES
    }

    /// This scheme's traffic normalized to a baseline run (the paper's
    /// "normalized memory traffic", Figure 12). Returns 1.0 when the
    /// baseline moved no data.
    pub fn normalized_to(&self, base: &TrafficStats) -> f64 {
        if base.total_blocks() == 0 {
            1.0
        } else {
            self.total_blocks() as f64 / base.total_blocks() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_bytes() {
        let t = TrafficStats {
            demand_blocks: 10,
            prefetch_blocks: 5,
            writeback_blocks: 1,
        };
        assert_eq!(t.total_blocks(), 16);
        assert_eq!(t.total_bytes(), 16 * 64);
    }

    #[test]
    fn normalization() {
        let base = TrafficStats {
            demand_blocks: 100,
            prefetch_blocks: 0,
            writeback_blocks: 0,
        };
        let srp = TrafficStats {
            demand_blocks: 60,
            prefetch_blocks: 220,
            writeback_blocks: 0,
        };
        assert!((srp.normalized_to(&base) - 2.8).abs() < 1e-12);
        let empty = TrafficStats::default();
        assert_eq!(srp.normalized_to(&empty), 1.0);
    }

    #[test]
    fn from_dram_copies_kind_counters() {
        let d = DramStats {
            demand_blocks: 3,
            prefetch_blocks: 4,
            writeback_blocks: 5,
            row_hits: 2,
            row_misses: 10,
        };
        let t = TrafficStats::from_dram(&d);
        assert_eq!(t.demand_blocks, 3);
        assert_eq!(t.prefetch_blocks, 4);
        assert_eq!(t.writeback_blocks, 5);
    }
}

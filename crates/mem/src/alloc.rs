//! Heap allocation and the legitimate-heap-range test.
//!
//! The GRP pointer prefetching scheme "greedily generates a prefetch for
//! any fetched value that falls within the ranges of legitimate heap
//! memory addresses … a simple base-and-bounds check using the start and
//! end addresses of the heap" (paper §3.2). [`HeapAllocator`] is the
//! simulator's `malloc`: workloads build their arrays, linked lists and
//! trees through it, and the resulting [`HeapRange`] is handed to the
//! prefetch engine for the base-and-bounds test.

use crate::addr::Addr;

/// The contiguous range of legitimate heap addresses, used by the
/// pointer-scan base-and-bounds check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapRange {
    /// First byte of the heap.
    pub start: Addr,
    /// One past the last allocated byte.
    pub end: Addr,
}

impl HeapRange {
    /// True when `a` points into the allocated heap.
    ///
    /// The hardware test also rejects the null-ish low addresses; since the
    /// heap base is far above zero this falls out of the range check.
    #[inline]
    pub fn contains(&self, a: Addr) -> bool {
        a >= self.start && a < self.end
    }

    /// Total allocated bytes.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A deterministic bump allocator over the functional memory.
///
/// Real `malloc` implementations lay contiguously-allocated objects out
/// contiguously; the paper leans on exactly this ("the regular layout …
/// and memory allocation patterns for pointer data structures", §3.1), so
/// the bump allocator is the faithful model. A configurable inter-object
/// pad lets workloads de-cluster allocations to model fragmented heaps
/// (used by the twolf-like kernel).
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    start: Addr,
    next: u64,
    pad: u64,
    coloring: bool,
    color_seq: u64,
}

impl HeapAllocator {
    /// Creates an allocator whose heap begins at `start`.
    pub fn new(start: Addr) -> Self {
        Self {
            start,
            next: start.0,
            pad: 0,
            coloring: true,
            color_seq: 0,
        }
    }

    /// Disables cache-set coloring of large allocations (see
    /// [`HeapAllocator::alloc`]).
    pub fn set_coloring(&mut self, on: bool) {
        self.coloring = on;
    }

    /// Sets a pad in bytes inserted after every allocation (default 0).
    pub fn set_pad(&mut self, pad: u64) {
        self.pad = pad;
    }

    /// Allocates `size` bytes aligned to `align` (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = (self.next + align - 1) & !(align - 1);
        self.next = aligned + size + self.pad;
        // Large allocations get a deterministic page-granular cache-set
        // color: the OS's physical page placement decorrelates big arrays
        // in a physically-indexed L2, where a pure bump pointer would
        // alias power-of-two-sized arrays onto the same sets.
        if self.coloring && size >= 4096 {
            self.color_seq += 1;
            self.next += (self.color_seq % 61) * 4096;
        }
        Addr(aligned)
    }

    /// Allocates an array of `n` elements of `elem_size` bytes, aligned to
    /// the element size (capped at 64-byte alignment like typical mallocs).
    pub fn alloc_array(&mut self, n: u64, elem_size: u64) -> Addr {
        let align = elem_size.next_power_of_two().clamp(8, 64);
        self.alloc(n * elem_size, align)
    }

    /// The legitimate heap range so far: `[start, high-water mark)`.
    pub fn range(&self) -> HeapRange {
        HeapRange {
            start: self.start,
            end: Addr(self.next),
        }
    }

    /// Bytes allocated so far (including alignment and pad waste).
    pub fn used(&self) -> u64 {
        self.next - self.start.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous_and_aligned() {
        let mut h = HeapAllocator::new(Addr(0x1000));
        let a = h.alloc(10, 8);
        let b = h.alloc(10, 8);
        assert_eq!(a, Addr(0x1000));
        assert_eq!(b, Addr(0x1010)); // 10 rounded up to the next 8-aligned slot
        assert!(b.is_aligned(8));
    }

    #[test]
    fn range_tracks_high_water_mark() {
        let mut h = HeapAllocator::new(Addr(0x4000));
        assert!(h.range().is_empty());
        let a = h.alloc(64, 64);
        let r = h.range();
        assert!(r.contains(a));
        assert!(r.contains(a.offset(63)));
        assert!(!r.contains(a.offset(64)));
        assert!(!r.contains(Addr(0x3fff)));
        assert_eq!(r.len(), 64);
    }

    #[test]
    fn pad_separates_objects() {
        let mut h = HeapAllocator::new(Addr(0x1000));
        h.set_pad(128);
        let a = h.alloc(8, 8);
        let b = h.alloc(8, 8);
        assert!(b.0 - a.0 >= 136);
    }

    #[test]
    fn alloc_array_aligns_to_element() {
        let mut h = HeapAllocator::new(Addr(0x1001));
        let a = h.alloc_array(100, 8);
        assert!(a.is_aligned(8));
        let b = h.alloc_array(4, 48); // struct-sized elements
        assert!(b.is_aligned(64));
    }

    #[test]
    fn coloring_decorrelates_large_arrays() {
        let mut h = HeapAllocator::new(Addr(0x1000));
        let a = h.alloc(256 * 1024, 64);
        let b = h.alloc(256 * 1024, 64);
        // With coloring, the two arrays must not land a multiple of the
        // typical L2 span (sets × block) apart.
        let delta = b.0 - a.0;
        assert_ne!(delta % (4096 * 64), 0, "arrays must not alias set-wise");
        // Disabling coloring restores pure bump behaviour.
        let mut h2 = HeapAllocator::new(Addr(0x1000));
        h2.set_coloring(false);
        let a2 = h2.alloc(256 * 1024, 64);
        let b2 = h2.alloc(256 * 1024, 64);
        assert_eq!(b2.0 - a2.0, 256 * 1024);
    }

    #[test]
    fn small_allocations_are_never_colored() {
        let mut h = HeapAllocator::new(Addr(0x1000));
        let a = h.alloc(64, 64);
        let b = h.alloc(64, 64);
        assert_eq!(b.0 - a.0, 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_alignment_panics() {
        let mut h = HeapAllocator::new(Addr(0x1000));
        h.alloc(8, 3);
    }
}

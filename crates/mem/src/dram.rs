//! Multi-channel DRAM with open-page row buffers.
//!
//! Models the paper's "effective 800-MHz, 4-channel Rambus memory system"
//! (§5.1) at the fidelity the prefetching study needs:
//!
//! * per-channel data-bus occupancy (a channel transfers one block at a
//!   time, so prefetches contend with demands only if issued),
//! * per-bank open rows (row hits are much cheaper than row conflicts —
//!   the reason region prefetching is cheap per block, and why the SRP
//!   queue "issues prefetches first to those DRAM banks that already have
//!   the needed page open", §3.1),
//! * idle-channel detection for the access prioritizer (§3.1: the
//!   prioritizer "forwards requests to the memory controller whenever the
//!   controller indicates that the memory channels are idle").
//!
//! Timing is expressed in CPU cycles. The model is conservative about
//! overlap: command and data occupancy of a request are merged into one
//! busy interval per channel, which slightly understates peak bandwidth
//! but preserves the contention behaviour the paper's results rest on.

use crate::addr::{BlockAddr, RegionAddr, REGION_BLOCKS};

/// DRAM timing and geometry parameters (CPU cycles at 1.6 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels (paper: 4).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Cache blocks per row buffer (per bank). 32 × 64 B = 2 KB rows.
    pub blocks_per_row: u64,
    /// Cycles a demand pays to preempt a prefetch transfer in service.
    pub t_preempt: u64,
    /// Cycles from issue to first data when the row is already open.
    pub t_row_hit: u64,
    /// Extra cycles to precharge + activate on a row conflict.
    pub t_row_miss_extra: u64,
    /// Channel occupancy to transfer one 64 B block.
    pub t_burst: u64,
    /// Fixed controller/system overhead added to every access.
    pub t_overhead: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 4,
            banks_per_channel: 8,
            blocks_per_row: 32,
            t_preempt: 8,
            t_row_hit: 20,
            t_row_miss_extra: 40,
            t_burst: 32,
            t_overhead: 40,
        }
    }
}

/// What a DRAM access is for; used for traffic accounting and for the
/// demand/prefetch distinction in scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A demand fetch (L2 demand miss).
    Demand,
    /// A prefetch issued by the SRP/GRP/stride engine.
    Prefetch,
    /// A dirty-block writeback (occupies the bus, returns no data).
    Writeback,
}

/// A completed access descriptor returned by [`Dram::issue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// The block transferred.
    pub block: BlockAddr,
    /// Demand, prefetch, or writeback.
    pub kind: RequestKind,
    /// Cycle at which the full block is available (or written).
    pub complete_at: u64,
    /// True when the access hit an open row.
    pub row_hit: bool,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
}

#[derive(Debug, Clone)]
struct Channel {
    /// Wire occupancy considering every request kind.
    bus_free_at: u64,
    /// Wire occupancy considering demands only (prefetches are
    /// preemptible and do not delay demands beyond `t_preempt`).
    demand_bus_free_at: u64,
    /// Latest completion time among demand accesses.
    demand_busy_until: u64,
    banks: Vec<Bank>,
}

/// Per-kind access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Demand block fetches.
    pub demand_blocks: u64,
    /// Prefetch block fetches.
    pub prefetch_blocks: u64,
    /// Writeback blocks.
    pub writeback_blocks: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that required an activate (row conflict or closed bank).
    pub row_misses: u64,
}

/// The DRAM subsystem: a set of channels with banked open-page state.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    stats: DramStats,
    /// Accumulated data-bus busy cycles per channel (observer sampling).
    busy_cycles: Vec<u64>,
    /// True when the O(1) region-scan mask path applies (see
    /// [`Dram::region_idle_masks`]).
    region_fast: bool,
    /// `group_masks[g]`: bit `i` set iff region position `i` satisfies
    /// `i & (channels - 1) == g`. Only the first `channels` slots are used.
    group_masks: [u64; 8],
}

impl Dram {
    /// Builds the DRAM from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics unless channel/bank/row counts are nonzero powers of two.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels.is_power_of_two());
        assert!(cfg.banks_per_channel.is_power_of_two());
        assert!(cfg.blocks_per_row.is_power_of_two());
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                bus_free_at: 0,
                demand_bus_free_at: 0,
                demand_busy_until: 0,
                banks: vec![
                    Bank {
                        open_row: None,
                        ready_at: 0
                    };
                    cfg.banks_per_channel
                ],
            })
            .collect();
        // The mask-based region scan needs (a) every region position's
        // channel expressible as `(i ^ fold) & (channels - 1)` — true for
        // up to 64 channels since the XOR-fold shifts align with the
        // 6-bit region index — and (b) a whole region inside one DRAM
        // row per channel, so one open-row probe covers all 64 blocks.
        // The mask table caps the supported channel count at 8 (plenty:
        // the paper uses 4); wider geometries fall back to per-block
        // probes, which stay exact.
        let region_fast = REGION_BLOCKS == 64
            && cfg.channels <= 8
            && (cfg.channels as u64) * cfg.blocks_per_row >= REGION_BLOCKS as u64;
        let mut group_masks = [0u64; 8];
        for i in 0..REGION_BLOCKS.min(64) {
            group_masks[i & (cfg.channels - 1) & 7] |= 1u64 << i;
        }
        Self {
            cfg,
            channels,
            stats: DramStats::default(),
            busy_cycles: vec![0; cfg.channels],
            region_fast,
            group_masks,
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Access counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Channel index serving `block`. Consecutive blocks interleave
    /// across channels; higher address bits are XOR-folded in so that
    /// power-of-two strides still spread over all channels (standard
    /// controller address hashing).
    #[inline]
    pub fn channel_of(&self, block: BlockAddr) -> usize {
        let b = block.0;
        let folded = b ^ (b >> 6) ^ (b >> 12) ^ (b >> 18);
        (folded as usize) & (self.cfg.channels - 1)
    }

    #[inline]
    fn row_of(&self, block: BlockAddr) -> u64 {
        (block.0 >> self.cfg.channels.trailing_zeros()) / self.cfg.blocks_per_row
    }

    #[inline]
    fn bank_of_row(&self, row: u64) -> usize {
        (row as usize) & (self.cfg.banks_per_channel - 1)
    }

    /// True when `block`'s channel data bus is free at `now` — the
    /// prioritizer's precondition for forwarding a prefetch.
    pub fn channel_idle(&self, block: BlockAddr, now: u64) -> bool {
        self.channels[self.channel_of(block)].bus_free_at <= now
    }

    /// True when any demand access is still occupying `block`'s channel.
    pub fn channel_has_pending_demand(&self, block: BlockAddr, now: u64) -> bool {
        self.channels[self.channel_of(block)].demand_busy_until > now
    }

    /// True when the row containing `block` is open in its bank — used by
    /// the SRP queue's bank-aware prefetch ordering.
    pub fn row_is_open(&self, block: BlockAddr) -> bool {
        let ch = &self.channels[self.channel_of(block)];
        let row = self.row_of(block);
        ch.banks[self.bank_of_row(row)].open_row == Some(row)
    }

    /// Issues an access for `block` at cycle `now`, returning its
    /// completion descriptor. Requests on one channel serialize in issue
    /// order (the caller models any higher-level queueing/prioritization).
    pub fn issue(&mut self, block: BlockAddr, kind: RequestKind, now: u64) -> DramRequest {
        let ch_idx = self.channel_of(block);
        let row = self.row_of(block);
        let bank_idx = self.bank_of_row(row);
        let cfg = self.cfg;
        let ch = &mut self.channels[ch_idx];
        let bank = &mut ch.banks[bank_idx];

        // Demands preempt prefetch transfers in service: they wait only
        // for other demands (plus a small interrupt penalty when a
        // prefetch burst is on the wires). Prefetches and writebacks wait
        // for everything.
        let start = if kind == RequestKind::Demand {
            let base = now.max(ch.demand_bus_free_at);
            if ch.bus_free_at > base {
                base + cfg.t_preempt
            } else {
                base
            }
        } else {
            now.max(ch.bus_free_at).max(bank.ready_at)
        };
        let row_hit = bank.open_row == Some(row);
        let access = if row_hit {
            cfg.t_row_hit
        } else {
            cfg.t_row_hit + cfg.t_row_miss_extra
        };
        let complete_at = start + cfg.t_overhead + access + cfg.t_burst;

        bank.open_row = Some(row);
        bank.ready_at = complete_at;
        // Row hits pipeline behind the data burst (the CAS of the next
        // access overlaps this transfer); conflicts additionally hold the
        // bus for the precharge/activate window.
        let occupancy = cfg.t_burst + if row_hit { 0 } else { cfg.t_row_miss_extra };
        ch.bus_free_at = ch.bus_free_at.max(start + occupancy);
        if kind == RequestKind::Demand {
            ch.demand_bus_free_at = ch.demand_bus_free_at.max(start + occupancy);
            ch.demand_busy_until = ch.demand_busy_until.max(complete_at);
        }
        self.busy_cycles[ch_idx] += occupancy;

        match kind {
            RequestKind::Demand => self.stats.demand_blocks += 1,
            RequestKind::Prefetch => self.stats.prefetch_blocks += 1,
            RequestKind::Writeback => self.stats.writeback_blocks += 1,
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }

        DramRequest {
            block,
            kind,
            complete_at,
            row_hit,
        }
    }

    /// Earliest cycle at which `block`'s channel could start a new access.
    pub fn channel_free_at(&self, block: BlockAddr) -> u64 {
        self.channels[self.channel_of(block)].bus_free_at
    }

    /// Earliest cycle at which channel index `ch` could start a new access.
    pub fn channel_free_at_index(&self, ch: usize) -> u64 {
        self.channels[ch].bus_free_at
    }

    /// XOR-fold constant of `region`: on the fast path, the channel of
    /// region position `i` (block `(region << 6) | i`) is
    /// `(i ^ fold) & (channels - 1)` — the region-aligned specialization
    /// of [`Dram::channel_of`]'s address hash.
    #[inline]
    pub fn region_fold(&self, region: RegionAddr) -> usize {
        let r = region.0;
        ((r ^ (r >> 6) ^ (r >> 12)) as usize) & (self.cfg.channels - 1)
    }

    /// Per-fold idle masks for scanning whole regions in O(1): in
    /// `masks[k]`, bit `i` is set iff the channel serving position `i`
    /// of a region with fold `k` is idle at `now` — so
    /// `entry.bits & masks[fold]` prunes a candidate vector to its
    /// issuable positions in one AND. `None` when the geometry doesn't
    /// support the mask path; callers must then probe per block (exact
    /// either way).
    pub fn region_idle_masks(&self, now: u64) -> Option<[u64; 8]> {
        if !self.region_fast {
            return None;
        }
        let c = self.cfg.channels;
        let mut masks = [0u64; 8];
        for (ch, state) in self.channels.iter().enumerate() {
            if state.bus_free_at <= now {
                for (k, m) in masks.iter_mut().enumerate().take(c) {
                    *m |= self.group_masks[(ch ^ k) & (c - 1)];
                }
            }
        }
        Some(masks)
    }

    /// Mask over a region's 64 block positions whose DRAM row is already
    /// open in its bank (the whole region shares one row index on the
    /// fast path, but each channel has its own bank state). `None` off
    /// the fast path.
    pub fn region_open_mask(&self, region: RegionAddr) -> Option<u64> {
        if !self.region_fast {
            return None;
        }
        let c = self.cfg.channels;
        let k = self.region_fold(region);
        let row = self.row_of(region.block(0));
        let bank = self.bank_of_row(row);
        let mut m = 0u64;
        for (ch, state) in self.channels.iter().enumerate() {
            if state.banks[bank].open_row == Some(row) {
                m |= self.group_masks[(ch ^ k) & (c - 1)];
            }
        }
        Some(m)
    }

    /// Channel-index bitmask (bit `ch` set) of the channels that the set
    /// positions of `bits` within `region` map to. `None` off the fast
    /// path.
    pub fn region_channel_set(&self, region: RegionAddr, bits: u64) -> Option<u64> {
        if !self.region_fast {
            return None;
        }
        let c = self.cfg.channels;
        let k = self.region_fold(region);
        let mut set = 0u64;
        for g in 0..c {
            if bits & self.group_masks[g] != 0 {
                set |= 1u64 << ((g ^ k) & (c - 1));
            }
        }
        Some(set)
    }

    /// Fault-injection seam: holds `channel`'s data bus busy until cycle
    /// `until`. A *stall* (`demands_too = false`) blocks only prefetches
    /// and writebacks — demands still preempt through, paying at most the
    /// usual `t_preempt` penalty. An *outage* (`demands_too = true`)
    /// blocks every request kind. The stall occupies no bank and counts
    /// no access, so the row-accounting identity is unaffected; horizons
    /// only ever move forward, preserving the demand ≤ overall invariant.
    pub fn stall_channel(&mut self, channel: usize, until: u64, demands_too: bool) {
        let ch = &mut self.channels[channel % self.cfg.channels];
        ch.bus_free_at = ch.bus_free_at.max(until);
        if demands_too {
            ch.demand_bus_free_at = ch.demand_bus_free_at.max(until);
        }
    }

    /// Accumulated data-bus busy cycles, one slot per channel — the
    /// numerator of a per-channel busy fraction over any cycle window.
    pub fn channel_busy_cycles(&self) -> &[u64] {
        &self.busy_cycles
    }

    /// Earliest cycle at which *any* channel is free — when the
    /// prioritizer should next attempt a prefetch issue.
    pub fn earliest_channel_free(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.bus_free_at)
            .min()
            .unwrap_or(0)
    }

    /// Structural invariants of the channel/bank state and counters:
    /// the demand-only bus horizon can never run past the all-kinds
    /// horizon, every access was classified as exactly one of row hit or
    /// row miss, and an open row implies its bank has been used. Returns
    /// the first violation as a message.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, ch) in self.channels.iter().enumerate() {
            if ch.demand_bus_free_at > ch.bus_free_at {
                return Err(format!(
                    "dram channel {i}: demand bus horizon {} past overall horizon {}",
                    ch.demand_bus_free_at, ch.bus_free_at
                ));
            }
            for (b, bank) in ch.banks.iter().enumerate() {
                if bank.open_row.is_some() && bank.ready_at == 0 {
                    return Err(format!(
                        "dram channel {i} bank {b}: open row with no access ever issued"
                    ));
                }
            }
        }
        let s = &self.stats;
        let total = s.demand_blocks + s.prefetch_blocks + s.writeback_blocks;
        if s.row_hits + s.row_misses != total {
            return Err(format!(
                "dram stats: row hits {} + misses {} != total accesses {}",
                s.row_hits, s.row_misses, total
            ));
        }
        if self.busy_cycles.len() != self.cfg.channels {
            return Err(format!(
                "dram: busy-cycle vector has {} slots for {} channels",
                self.busy_cycles.len(),
                self.cfg.channels
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut d = dram();
        let r = d.issue(BlockAddr(0), RequestKind::Demand, 0);
        assert!(!r.row_hit);
        let cfg = d.config();
        assert_eq!(
            r.complete_at,
            cfg.t_overhead + cfg.t_row_hit + cfg.t_row_miss_extra + cfg.t_burst
        );
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut d = dram();
        let a = d.issue(BlockAddr(0), RequestKind::Demand, 0);
        // Block 4 maps to channel 0 (4 % 4 == 0) and the same row.
        assert_eq!(d.channel_of(BlockAddr(4)), 0);
        let b = d.issue(BlockAddr(4), RequestKind::Demand, 0);
        assert!(b.row_hit);
        assert!(b.complete_at > a.complete_at);
    }

    #[test]
    fn different_channels_do_not_serialize() {
        let mut d = dram();
        let a = d.issue(BlockAddr(0), RequestKind::Demand, 0);
        let b = d.issue(BlockAddr(1), RequestKind::Demand, 0);
        assert_eq!(a.complete_at, b.complete_at, "channels are independent");
    }

    #[test]
    fn same_channel_serializes_on_the_bus() {
        let mut d = dram();
        let a = d.issue(BlockAddr(0), RequestKind::Demand, 0);
        let b = d.issue(BlockAddr(4), RequestKind::Demand, 0);
        let cfg = d.config();
        // b starts only after a releases the bus.
        assert!(b.complete_at >= a.complete_at + cfg.t_row_hit);
    }

    #[test]
    fn channel_idle_reflects_bus_occupancy() {
        let mut d = dram();
        assert!(d.channel_idle(BlockAddr(0), 0));
        let r = d.issue(BlockAddr(0), RequestKind::Demand, 0);
        assert!(!d.channel_idle(BlockAddr(4), 0));
        assert!(d.channel_idle(BlockAddr(4), r.complete_at));
        // Other channels stay idle.
        assert!(d.channel_idle(BlockAddr(1), 0));
    }

    #[test]
    fn demand_busy_tracking_ignores_prefetches() {
        let mut d = dram();
        d.issue(BlockAddr(1), RequestKind::Prefetch, 0);
        assert!(!d.channel_has_pending_demand(BlockAddr(1), 0));
        let r = d.issue(BlockAddr(5), RequestKind::Demand, 0);
        assert!(d.channel_has_pending_demand(BlockAddr(1), r.complete_at - 1));
        assert!(!d.channel_has_pending_demand(BlockAddr(1), r.complete_at));
    }

    #[test]
    fn row_is_open_after_access() {
        let mut d = dram();
        assert!(!d.row_is_open(BlockAddr(0)));
        d.issue(BlockAddr(0), RequestKind::Demand, 0);
        assert!(d.row_is_open(BlockAddr(0)));
        assert!(d.row_is_open(BlockAddr(4)), "same row, same bank");
        // A block in a different row of the same bank is not open.
        let far = BlockAddr(4 * 32 * 8); // next row in bank 0 (row stride x banks)
        assert!(!d.row_is_open(far));
    }

    #[test]
    fn row_conflict_costs_extra() {
        let mut d = dram();
        let cfg = d.config();
        let first = d.issue(BlockAddr(0), RequestKind::Demand, 0);
        // Conflict: same channel, same bank, different row. Issue after the
        // first access fully completes so no queueing obscures the math.
        let conflict = BlockAddr(4 * 32 * 8);
        assert_eq!(d.channel_of(conflict), 0);
        let now = first.complete_at;
        let r = d.issue(conflict, RequestKind::Demand, now);
        assert!(!r.row_hit);
        assert_eq!(
            r.complete_at,
            now + cfg.t_overhead + cfg.t_row_hit + cfg.t_row_miss_extra + cfg.t_burst
        );
    }

    #[test]
    fn stats_count_by_kind() {
        let mut d = dram();
        d.issue(BlockAddr(0), RequestKind::Demand, 0);
        d.issue(BlockAddr(1), RequestKind::Prefetch, 0);
        d.issue(BlockAddr(2), RequestKind::Writeback, 0);
        let s = d.stats();
        assert_eq!(s.demand_blocks, 1);
        assert_eq!(s.prefetch_blocks, 1);
        assert_eq!(s.writeback_blocks, 1);
        assert_eq!(s.row_hits + s.row_misses, 3);
    }

    #[test]
    fn writeback_occupies_bus() {
        let mut d = dram();
        d.issue(BlockAddr(0), RequestKind::Writeback, 0);
        assert!(!d.channel_idle(BlockAddr(4), 0));
    }

    /// The mask-based region scan must agree bit-for-bit with the
    /// per-block predicates it replaces, for every position of many
    /// regions and several channel occupancy states.
    #[test]
    fn region_masks_match_per_block_probes() {
        let mut d = dram();
        // Dirty up the channel/bank state asymmetrically.
        for (i, now) in [(0u64, 0u64), (5, 10), (130, 50), (4097, 200)] {
            d.issue(BlockAddr(i), RequestKind::Demand, now);
        }
        d.issue(BlockAddr(64 * 9 + 3), RequestKind::Prefetch, 300);
        for &now in &[0u64, 100, 400, 1_000] {
            let masks = d.region_idle_masks(now).expect("default geometry is fast");
            for r in [0u64, 1, 9, 63, 64, 0x123, 0xffff, 1 << 20] {
                let region = RegionAddr(r);
                let k = d.region_fold(region);
                let open = d.region_open_mask(region).unwrap();
                let mut bits = 0u64;
                for i in 0..REGION_BLOCKS {
                    let b = region.block(i);
                    assert_eq!(
                        d.channel_of(b),
                        (i ^ k) & (d.config().channels - 1),
                        "fold formula must reproduce channel_of"
                    );
                    assert_eq!(
                        masks[k] & (1 << i) != 0,
                        d.channel_idle(b, now),
                        "idle mask bit {i} of region {r:#x} at {now}"
                    );
                    assert_eq!(
                        open & (1 << i) != 0,
                        d.row_is_open(b),
                        "open mask bit {i} of region {r:#x}"
                    );
                    if i % 3 == 0 {
                        bits |= 1 << i;
                    }
                }
                let chs = d.region_channel_set(region, bits).unwrap();
                let mut expect = 0u64;
                for i in 0..REGION_BLOCKS {
                    if bits & (1 << i) != 0 {
                        expect |= 1 << d.channel_of(region.block(i));
                    }
                }
                assert_eq!(chs, expect, "channel set of region {r:#x}");
            }
        }
    }

    #[test]
    fn wide_geometry_falls_back_to_per_block_probes() {
        let d = Dram::new(DramConfig {
            channels: 16,
            ..DramConfig::default()
        });
        assert!(d.region_idle_masks(0).is_none());
        assert!(d.region_open_mask(RegionAddr(1)).is_none());
        assert!(d.region_channel_set(RegionAddr(1), 1).is_none());
    }

    #[test]
    fn stall_blocks_prefetches_but_not_demands() {
        let mut d = dram();
        let cfg = d.config();
        d.stall_channel(0, 1_000, false);
        assert!(!d.channel_idle(BlockAddr(0), 500));
        d.check_invariants().unwrap();
        // A prefetch waits for the stall to clear…
        let p = d.issue(BlockAddr(0), RequestKind::Prefetch, 500);
        assert!(p.complete_at >= 1_000 + cfg.t_overhead);
        // …but a demand on a freshly stalled channel pays only t_preempt.
        let mut d2 = dram();
        d2.stall_channel(0, 1_000, false);
        let q = d2.issue(BlockAddr(0), RequestKind::Demand, 500);
        assert_eq!(
            q.complete_at,
            500 + cfg.t_preempt + cfg.t_overhead + cfg.t_row_hit + cfg.t_row_miss_extra + cfg.t_burst
        );
        d2.check_invariants().unwrap();
    }

    #[test]
    fn outage_blocks_demands_too() {
        let mut d = dram();
        let cfg = d.config();
        d.stall_channel(0, 2_000, true);
        let q = d.issue(BlockAddr(0), RequestKind::Demand, 500);
        assert_eq!(
            q.complete_at,
            2_000 + cfg.t_overhead + cfg.t_row_hit + cfg.t_row_miss_extra + cfg.t_burst
        );
        d.check_invariants().unwrap();
    }
}

//! A fast multiply-rotate hasher for the simulator's hot integer-keyed
//! maps (resident pages, the region engine's slot index).
//!
//! The standard library's default SipHash is DoS-resistant but costs
//! tens of nanoseconds per `u64` key — measurable when the replay loop
//! probes a map on every L2 miss. Keys here are simulator-internal
//! addresses, never attacker-controlled, so a non-cryptographic mix is
//! safe. No map keyed with this hasher may let iteration order reach
//! simulation results; every current user either never iterates or
//! sorts immediately after collecting.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-style multiply constant (same mix as the well-known
/// FxHash): odd, high entropy across the top bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-shot mixing hasher. State is a single `u64`; each write folds
/// the input in with rotate-xor-multiply.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` keyed through [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed through [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_and_deterministically() {
        let h = |n: u64| {
            let mut s = FastHasher::default();
            s.write_u64(n);
            s.finish()
        };
        assert_eq!(h(42), h(42), "stateless determinism");
        let vals: Vec<u64> = (0..1024).map(|i| h(i * 4096)).collect();
        let uniq: std::collections::HashSet<u64> = vals.iter().copied().collect();
        assert_eq!(uniq.len(), vals.len(), "page-stride keys must not collide");
    }

    #[test]
    fn map_basics_work() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..100u64 {
            m.insert(i * 64, i as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(42 * 64)), Some(&42));
        assert_eq!(m.remove(&(99 * 64)), Some(99));
        assert!(!m.contains_key(&(99 * 64)));
    }

    #[test]
    fn byte_slices_hash_via_word_chunks() {
        let h = |b: &[u8]| {
            let mut s = FastHasher::default();
            s.write(b);
            s.finish()
        };
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"), "tail padding still distinguishes");
        assert_eq!(h(b"0123456789"), h(b"0123456789"));
    }
}

//! Deliberately naive reference models of the scheme-independent memory
//! semantics — the "obviously correct" half of the differential oracle.
//!
//! Each model here mirrors the *contract* of its optimized counterpart
//! ([`crate::Cache`], [`crate::MshrFile`], [`crate::Dram`]) using the
//! simplest data structures that can express it: per-set `Vec`s with
//! recency stamps instead of a flat rotated array, a linear-scan `Vec`
//! of MSHR entries instead of a `VecDeque` with packed flags, and
//! modulo/division address math instead of masks and shifts. Nothing in
//! this module is shared with the optimized implementations except the
//! public stats structs (so results can be compared field-for-field)
//! and the address newtypes.
//!
//! The differential runner in `grp-core` replays a trace through a
//! no-prefetch memory system assembled from these models and asserts
//! event-for-event agreement with the optimized `MemSystem`.

use crate::addr::{Addr, BlockAddr, BLOCK_BYTES};
use crate::cache::{CacheConfig, CacheStats, InsertPriority};
use crate::dram::{DramConfig, DramRequest, DramStats, RequestKind};

/// One resident line in the naive cache: the full block address (no
/// tag/set split), its state bits, and a recency stamp.
#[derive(Debug, Clone, Copy)]
struct OracleLine {
    block: BlockAddr,
    dirty: bool,
    prefetched: bool,
    /// Recency: larger = more recently promoted. LRU-inserted lines get
    /// stamps *below* every live line so they are evicted first, and a
    /// later LRU insert sits below an earlier one — matching the
    /// optimized cache's rotate-into-last-way behaviour.
    stamp: i64,
}

/// A naive set-associative cache: one `Vec` of lines per set, victim
/// selection by minimum recency stamp, presence by linear scan.
#[derive(Debug, Clone)]
pub struct OracleCache {
    cfg: CacheConfig,
    sets: Vec<Vec<OracleLine>>,
    next_mru: i64,
    next_lru: i64,
    stats: CacheStats,
}

impl OracleCache {
    /// Builds the naive cache with the same geometry as [`crate::Cache`].
    pub fn new(cfg: CacheConfig) -> Self {
        let n = cfg.sets();
        assert!(n > 0, "cache must have at least one set");
        Self {
            cfg,
            sets: vec![Vec::new(); n],
            next_mru: 1,
            next_lru: -1,
            stats: CacheStats::default(),
        }
    }

    /// Counter snapshot (same struct as the optimized cache, so the
    /// differential runner compares them directly).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, b: BlockAddr) -> usize {
        // The optimized cache masks with sets-1; sets is a power of two,
        // so plain modulo is the same function, written the obvious way.
        (b.0 % self.sets.len() as u64) as usize
    }

    fn bump_mru(&mut self) -> i64 {
        let s = self.next_mru;
        self.next_mru += 1;
        s
    }

    fn bump_lru(&mut self) -> i64 {
        let s = self.next_lru;
        self.next_lru -= 1;
        s
    }

    /// Non-modifying presence test.
    pub fn contains(&self, b: BlockAddr) -> bool {
        self.sets[self.set_index(b)].iter().any(|l| l.block == b)
    }

    /// Demand access: returns whether the lookup hit. On a hit the line
    /// is promoted to most-recent, dirtied on a write, and a prefetched
    /// line is counted useful on its first demand touch.
    pub fn access(&mut self, b: BlockAddr, write: bool) -> bool {
        self.stats.demand_accesses += 1;
        let stamp = self.bump_mru();
        let set = self.set_index(b);
        match self.sets[set].iter_mut().find(|l| l.block == b) {
            Some(l) => {
                if l.prefetched {
                    l.prefetched = false;
                    self.stats.useful_prefetches += 1;
                }
                if write {
                    l.dirty = true;
                }
                l.stamp = stamp;
                true
            }
            None => {
                self.stats.demand_misses += 1;
                false
            }
        }
    }

    /// Inserts `b`, evicting the minimum-stamp line when the set is full.
    /// Returns the victim as `(block, dirty, was_unused_prefetch)`.
    pub fn fill(
        &mut self,
        b: BlockAddr,
        prio: InsertPriority,
        is_prefetch: bool,
        dirty: bool,
    ) -> Option<(BlockAddr, bool, bool)> {
        if is_prefetch {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.demand_fills += 1;
        }
        let stamp = match prio {
            InsertPriority::Mru => self.bump_mru(),
            InsertPriority::Lru => self.bump_lru(),
        };
        let set = self.set_index(b);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.block == b) {
            // Already present: merge flags; only an MRU fill re-promotes.
            l.dirty |= dirty;
            if !is_prefetch && l.prefetched {
                l.prefetched = false;
                self.stats.useful_prefetches += 1;
            }
            if matches!(prio, InsertPriority::Mru) {
                l.stamp = stamp;
            }
            return None;
        }
        let mut victim = None;
        if self.sets[set].len() >= self.cfg.ways {
            let (vi, _) = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.stamp)
                .expect("full set has lines");
            let v = self.sets[set].remove(vi);
            if v.prefetched {
                self.stats.useless_prefetches += 1;
            }
            if v.dirty {
                self.stats.writebacks += 1;
            }
            victim = Some((v.block, v.dirty, v.prefetched));
        }
        self.sets[set].push(OracleLine {
            block: b,
            dirty,
            prefetched: is_prefetch,
            stamp,
        });
        victim
    }

    /// Marks `b` dirty if present; returns whether it was present.
    /// Touches neither recency nor counters.
    pub fn set_dirty(&mut self, b: BlockAddr) -> bool {
        let set = self.set_index(b);
        match self.sets[set].iter_mut().find(|l| l.block == b) {
            Some(l) => {
                l.dirty = true;
                true
            }
            None => false,
        }
    }

    /// All resident blocks with their dirty bits, sorted by block — the
    /// final-contents view the differential runner compares.
    pub fn resident_blocks(&self) -> Vec<(BlockAddr, bool)> {
        let mut v: Vec<(BlockAddr, bool)> = self
            .sets
            .iter()
            .flatten()
            .map(|l| (l.block, l.dirty))
            .collect();
        v.sort_by_key(|(b, _)| b.0);
        v
    }
}

/// An outstanding miss in the naive MSHR file.
#[derive(Debug, Clone)]
pub struct OracleMshrEntry {
    /// The in-flight block.
    pub block: BlockAddr,
    /// A demand access waits on this block.
    pub demand: bool,
    /// The eventual fill is a prefetch fill (cleared when a demand merges).
    pub prefetch_fill: bool,
    /// Write-allocate: dirty the block on fill.
    pub dirty_on_fill: bool,
    /// Scheduled fill-completion cycle, once known.
    pub fill_at: Option<u64>,
}

/// A flat, linear-scan MSHR file with the same merge semantics as
/// [`crate::MshrFile`].
#[derive(Debug, Clone)]
pub struct OracleMshr {
    capacity: usize,
    /// Fault-injection mirror of [`crate::MshrFile`]'s capacity squeeze.
    squeeze: usize,
    entries: Vec<OracleMshrEntry>,
}

impl OracleMshr {
    /// A file with `capacity` registers.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            squeeze: 0,
            entries: Vec::new(),
        }
    }

    /// Mirrors [`crate::MshrFile::set_capacity_squeeze`]: withholds
    /// `squeeze` registers (floored at one usable register).
    pub fn set_capacity_squeeze(&mut self, squeeze: usize) {
        self.squeeze = squeeze;
    }

    /// True when no further miss can be tracked.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity.saturating_sub(self.squeeze).max(1)
    }

    /// Registers in use.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// The scheduled fill time for `block`, if known.
    pub fn fill_time(&self, block: BlockAddr) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.block == block)
            .and_then(|e| e.fill_at)
    }

    /// Earliest scheduled fill across the file.
    pub fn earliest_fill_time(&self) -> Option<u64> {
        self.entries.iter().filter_map(|e| e.fill_at).min()
    }

    /// Allocates or merges, mirroring [`crate::MshrFile::allocate_or_merge`]
    /// for the demand-only paths the oracle exercises. Returns false when
    /// the file was full and nothing was allocated.
    pub fn allocate_or_merge(&mut self, block: BlockAddr, demand: bool, dirty_on_fill: bool) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            if demand {
                e.demand = true;
                e.prefetch_fill = false;
            }
            e.dirty_on_fill |= dirty_on_fill;
            return true;
        }
        if self.is_full() {
            return false;
        }
        self.entries.push(OracleMshrEntry {
            block,
            demand,
            prefetch_fill: !demand,
            dirty_on_fill,
            fill_at: None,
        });
        true
    }

    /// Records the scheduled fill time; no-op for unknown blocks.
    pub fn set_fill_time(&mut self, block: BlockAddr, at: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            e.fill_at = Some(at);
        }
    }

    /// Releases the register for `block`, returning its entry.
    pub fn complete(&mut self, block: BlockAddr) -> Option<OracleMshrEntry> {
        let i = self.entries.iter().position(|e| e.block == block)?;
        Some(self.entries.remove(i))
    }
}

/// A naive multi-channel DRAM with the same timing contract as
/// [`crate::Dram`], written with division/modulo address math and
/// straightforward per-channel/bank state vectors.
#[derive(Debug, Clone)]
pub struct OracleDram {
    cfg: DramConfig,
    bus_free_at: Vec<u64>,
    demand_bus_free_at: Vec<u64>,
    open_row: Vec<Vec<Option<u64>>>,
    bank_ready_at: Vec<Vec<u64>>,
    stats: DramStats,
}

impl OracleDram {
    /// Builds the naive DRAM from `cfg`.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            bus_free_at: vec![0; cfg.channels],
            demand_bus_free_at: vec![0; cfg.channels],
            open_row: vec![vec![None; cfg.banks_per_channel]; cfg.channels],
            bank_ready_at: vec![vec![0; cfg.banks_per_channel]; cfg.channels],
            stats: DramStats::default(),
        }
    }

    /// Access counters (same struct as the optimized DRAM).
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Mirrors [`crate::Dram::stall_channel`]: holds the channel's bus
    /// (and, for an outage, its demand horizon) busy until `until`.
    pub fn stall_channel(&mut self, channel: usize, until: u64, demands_too: bool) {
        let ch = channel % self.cfg.channels;
        self.bus_free_at[ch] = self.bus_free_at[ch].max(until);
        if demands_too {
            self.demand_bus_free_at[ch] = self.demand_bus_free_at[ch].max(until);
        }
    }

    fn channel_of(&self, block: BlockAddr) -> usize {
        // XOR-fold the higher address bits so power-of-two strides still
        // spread; shifts written as divisions by block-count powers.
        let b = block.0;
        let folded = b ^ (b / 64) ^ (b / 4096) ^ (b / 262_144);
        (folded % self.cfg.channels as u64) as usize
    }

    fn row_of(&self, block: BlockAddr) -> u64 {
        (block.0 / self.cfg.channels as u64) / self.cfg.blocks_per_row
    }

    /// Issues an access, mirroring [`crate::Dram::issue`] timing exactly.
    pub fn issue(&mut self, block: BlockAddr, kind: RequestKind, now: u64) -> DramRequest {
        let ch = self.channel_of(block);
        let row = self.row_of(block);
        let bank = (row % self.cfg.banks_per_channel as u64) as usize;

        let start = if kind == RequestKind::Demand {
            let base = now.max(self.demand_bus_free_at[ch]);
            if self.bus_free_at[ch] > base {
                base + self.cfg.t_preempt
            } else {
                base
            }
        } else {
            now.max(self.bus_free_at[ch]).max(self.bank_ready_at[ch][bank])
        };
        let row_hit = self.open_row[ch][bank] == Some(row);
        let access = if row_hit {
            self.cfg.t_row_hit
        } else {
            self.cfg.t_row_hit + self.cfg.t_row_miss_extra
        };
        let complete_at = start + self.cfg.t_overhead + access + self.cfg.t_burst;

        self.open_row[ch][bank] = Some(row);
        self.bank_ready_at[ch][bank] = complete_at;
        let occupancy = self.cfg.t_burst + if row_hit { 0 } else { self.cfg.t_row_miss_extra };
        self.bus_free_at[ch] = self.bus_free_at[ch].max(start + occupancy);
        if kind == RequestKind::Demand {
            self.demand_bus_free_at[ch] = self.demand_bus_free_at[ch].max(start + occupancy);
        }
        match kind {
            RequestKind::Demand => self.stats.demand_blocks += 1,
            RequestKind::Prefetch => self.stats.prefetch_blocks += 1,
            RequestKind::Writeback => self.stats.writeback_blocks += 1,
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        DramRequest {
            block,
            kind,
            complete_at,
            row_hit,
        }
    }
}

/// Block count sanity helper shared by oracle users: traffic in bytes for
/// `blocks` transferred cache blocks.
pub fn blocks_to_bytes(blocks: u64) -> u64 {
    blocks * BLOCK_BYTES
}

/// Convenience: the block containing `a` (naive math for tests).
pub fn block_of(a: Addr) -> BlockAddr {
    BlockAddr(a.0 / BLOCK_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::dram::Dram;

    fn tiny_cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 512, // 4 sets x 2 ways
            ways: 2,
        }
    }

    #[test]
    fn oracle_cache_matches_optimized_on_mixed_sequences() {
        // Drive both caches with the same pseudo-random access/fill
        // sequence and compare hits, victims, stats, and final contents.
        let mut naive = OracleCache::new(tiny_cfg());
        let mut real = Cache::new(tiny_cfg());
        let mut x = 0x1234_5678_u64;
        for step in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = BlockAddr((x >> 33) % 32);
            let write = (x >> 7) & 1 == 1;
            if step % 3 == 0 {
                let prio = if (x >> 9) & 1 == 1 {
                    InsertPriority::Lru
                } else {
                    InsertPriority::Mru
                };
                let is_pf = (x >> 11) & 1 == 1;
                let v_naive = naive.fill(b, prio, is_pf, write);
                let v_real = real
                    .fill(b, prio, is_pf, write)
                    .map(|v| (v.block, v.dirty, v.was_unused_prefetch));
                assert_eq!(v_naive, v_real, "fill victim diverged at step {step}");
            } else {
                let h_naive = naive.access(b, write);
                let h_real = real.access(b, write) == crate::cache::LookupResult::Hit;
                assert_eq!(h_naive, h_real, "hit/miss diverged at step {step}");
            }
        }
        assert_eq!(naive.stats(), real.stats());
        let mut real_resident: Vec<BlockAddr> = (0..32)
            .map(BlockAddr)
            .filter(|b| real.contains(*b))
            .collect();
        real_resident.sort_by_key(|b| b.0);
        let naive_resident: Vec<BlockAddr> =
            naive.resident_blocks().iter().map(|(b, _)| *b).collect();
        assert_eq!(naive_resident, real_resident);
    }

    #[test]
    fn oracle_dram_matches_optimized_timing() {
        let mut naive = OracleDram::new(DramConfig::default());
        let mut real = Dram::new(DramConfig::default());
        let mut x = 0xdead_beef_u64;
        let mut now = 0u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = BlockAddr((x >> 30) % 10_000);
            let kind = match (x >> 5) % 3 {
                0 => RequestKind::Demand,
                1 => RequestKind::Prefetch,
                _ => RequestKind::Writeback,
            };
            now += (x >> 50) % 100;
            let a = naive.issue(b, kind, now);
            let r = real.issue(b, kind, now);
            assert_eq!(a, r, "request timing diverged");
        }
        assert_eq!(naive.stats(), real.stats());
    }

    #[test]
    fn oracle_mshr_merge_semantics() {
        let mut m = OracleMshr::new(2);
        assert!(m.allocate_or_merge(BlockAddr(1), false, false));
        assert!(m.entries[0].prefetch_fill);
        assert!(m.allocate_or_merge(BlockAddr(1), true, true));
        assert!(m.entries[0].demand && !m.entries[0].prefetch_fill);
        assert!(m.entries[0].dirty_on_fill);
        assert!(m.allocate_or_merge(BlockAddr(2), true, false));
        assert!(m.is_full());
        assert!(!m.allocate_or_merge(BlockAddr(3), true, false));
        m.set_fill_time(BlockAddr(2), 70);
        assert_eq!(m.fill_time(BlockAddr(2)), Some(70));
        assert_eq!(m.earliest_fill_time(), Some(70));
        let e = m.complete(BlockAddr(2)).expect("present");
        assert!(e.demand);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn lru_insert_order_matches_rotate_semantics() {
        // Two successive LRU inserts: the *newer* one must be evicted
        // first (it rotates into the last way, pushing the older one up).
        let mut naive = OracleCache::new(tiny_cfg());
        let mut real = Cache::new(tiny_cfg());
        for c in [&mut naive] {
            c.fill(BlockAddr(0), InsertPriority::Lru, true, false);
            c.fill(BlockAddr(4), InsertPriority::Lru, true, false);
        }
        real.fill(BlockAddr(0), InsertPriority::Lru, true, false);
        real.fill(BlockAddr(4), InsertPriority::Lru, true, false);
        let vn = naive.fill(BlockAddr(8), InsertPriority::Mru, false, false);
        let vr = real
            .fill(BlockAddr(8), InsertPriority::Mru, false, false)
            .map(|v| (v.block, v.dirty, v.was_unused_prefetch));
        assert_eq!(vn, vr);
        assert_eq!(vn.expect("evicts").0, BlockAddr(4), "newest LRU insert evicted first");
    }
}

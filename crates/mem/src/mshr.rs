//! Miss status holding registers (MSHRs).
//!
//! "Each cache contains 8 MSHRs" and "the miss status holding registers
//! track all outstanding accesses, regardless of type" (paper §3.1/§5.1):
//! demand misses and prefetches share the same file, which naturally
//! bounds total memory-level parallelism. GRP additionally attaches "a
//! three-bit counter to both the L2 MSHRs and prefetch queue entries to
//! control pointer and recursive pointer prefetching" (§3.3.1); that
//! counter lives here as [`MshrEntry::pointer_level`].

use std::collections::VecDeque;

use crate::addr::BlockAddr;

/// An outstanding miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// The missing block.
    pub block: BlockAddr,
    /// True when a demand access is waiting on this block (a prefetch
    /// entry is upgraded when a demand miss merges into it — a "late
    /// prefetch": the request is already in flight, the load still waits).
    pub demand: bool,
    /// True when the fill should be marked as a prefetch in the cache
    /// (insert LRU, set prefetch bit). A merged demand clears this.
    pub prefetch_fill: bool,
    /// GRP pointer-chase depth remaining for the returned line
    /// (0 = do not scan; 1 = `pointer` hint; 6 = `recursive` hint).
    pub pointer_level: u8,
    /// Opaque ids of core loads waiting on this block.
    pub waiters: Vec<u32>,
    /// True when the block will be dirtied on fill (write-allocate store miss).
    pub dirty_on_fill: bool,
    /// Cycle at which the fill for this miss lands, once scheduled. The
    /// memory system keeps this here instead of in a side table: the MSHR
    /// file already tracks exactly the in-flight blocks, so an 8-entry
    /// scan replaces a per-access hash probe.
    pub fill_at: Option<u64>,
}

/// A bounded file of [`MshrEntry`]s with merge semantics.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    /// Fault-injection seam: registers temporarily withheld from the
    /// file. The effective capacity is `capacity - squeeze`, floored at
    /// one register so forward progress is always possible. Zero (the
    /// default) leaves behaviour bit-identical to an unsqueezed file.
    squeeze: usize,
    entries: VecDeque<MshrEntry>,
    peak_occupancy: usize,
    merges: u64,
    late_prefetch_merges: u64,
}

/// Result of [`MshrFile::allocate_or_merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A fresh entry was allocated; the caller must send the request on.
    Allocated,
    /// The block was already outstanding; the waiter (if any) was attached.
    Merged,
    /// The file is full; the access must retry later.
    Full,
}

impl MshrFile {
    /// Creates a file with `capacity` registers (the paper uses 8).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            squeeze: 0,
            entries: VecDeque::with_capacity(capacity),
            peak_occupancy: 0,
            merges: 0,
            late_prefetch_merges: 0,
        }
    }

    /// Registers currently in use.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// The configured register count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers usable right now: the configured capacity minus any
    /// active fault-injection squeeze, never less than one.
    pub fn effective_capacity(&self) -> usize {
        self.capacity.saturating_sub(self.squeeze).max(1)
    }

    /// Fault-injection seam: withholds `squeeze` registers until reset
    /// with zero. Entries already allocated above the squeezed capacity
    /// stay live and drain normally — the squeeze only blocks *new*
    /// allocations, so no invariant is violated mid-window.
    pub fn set_capacity_squeeze(&mut self, squeeze: usize) {
        self.squeeze = squeeze;
    }

    /// True when no more misses can be tracked.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.effective_capacity()
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Registers currently holding prefetch fills (for epoch occupancy
    /// sampling).
    pub fn prefetch_inflight(&self) -> usize {
        self.entries.iter().filter(|e| e.prefetch_fill).count()
    }

    /// Number of merges into an existing entry.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of demand misses that merged into an in-flight *prefetch*
    /// (late prefetches — partially hidden latency).
    pub fn late_prefetch_merges(&self) -> u64 {
        self.late_prefetch_merges
    }

    /// Looks up an outstanding entry for `block`.
    pub fn get(&self, block: BlockAddr) -> Option<&MshrEntry> {
        self.entries.iter().find(|e| e.block == block)
    }

    /// True when `block` is already in flight.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.get(block).is_some()
    }

    /// Bit mask over `region`'s 64 block positions that are in flight —
    /// one pass over the (small) file instead of one `contains` scan per
    /// position, for the region engine's batch residency probes.
    pub fn region_mask(&self, region: crate::addr::RegionAddr) -> u64 {
        let base = region.block(0).0;
        let mut m = 0u64;
        for e in &self.entries {
            let off = e.block.0.wrapping_sub(base);
            if off < crate::addr::REGION_BLOCKS as u64 {
                m |= 1 << off;
            }
        }
        m
    }

    /// Allocates a new entry or merges into an existing one.
    ///
    /// `demand` distinguishes CPU misses from prefetch requests; `waiter`
    /// is an opaque load id woken on completion; `pointer_level` seeds the
    /// GRP pointer-chase counter; `dirty_on_fill` implements write-allocate.
    pub fn allocate_or_merge(
        &mut self,
        block: BlockAddr,
        demand: bool,
        waiter: Option<u32>,
        pointer_level: u8,
        dirty_on_fill: bool,
    ) -> MshrOutcome {
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            self.merges += 1;
            if demand {
                if e.prefetch_fill {
                    self.late_prefetch_merges += 1;
                }
                e.demand = true;
                e.prefetch_fill = false;
            }
            e.pointer_level = e.pointer_level.max(pointer_level);
            e.dirty_on_fill |= dirty_on_fill;
            if let Some(w) = waiter {
                e.waiters.push(w);
            }
            return MshrOutcome::Merged;
        }
        if self.is_full() {
            return MshrOutcome::Full;
        }
        self.entries.push_back(MshrEntry {
            block,
            demand,
            prefetch_fill: !demand,
            pointer_level,
            waiters: waiter.into_iter().collect(),
            dirty_on_fill,
            fill_at: None,
        });
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Records (or overwrites) the scheduled fill-completion cycle for
    /// `block`. No-op when the block is not outstanding.
    pub fn set_fill_time(&mut self, block: BlockAddr, at: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            e.fill_at = Some(at);
        }
    }

    /// The scheduled fill-completion cycle for `block`, if one is known.
    pub fn fill_time(&self, block: BlockAddr) -> Option<u64> {
        self.get(block).and_then(|e| e.fill_at)
    }

    /// Earliest scheduled fill among all outstanding entries — what a
    /// full file waits for.
    pub fn earliest_fill_time(&self) -> Option<u64> {
        self.entries.iter().filter_map(|e| e.fill_at).min()
    }

    /// True when any outstanding entry is a demand miss — the access
    /// prioritizer's gate: prefetches are forwarded "only when there are
    /// no outstanding demand misses from the L2 cache" (§3.1).
    pub fn has_demand(&self) -> bool {
        self.entries.iter().any(|e| e.demand)
    }

    /// Completes the miss for `block`, releasing the register and
    /// returning the entry (with its waiters) to the caller.
    ///
    /// Returns `None` if the block was not outstanding.
    pub fn complete(&mut self, block: BlockAddr) -> Option<MshrEntry> {
        let idx = self.entries.iter().position(|e| e.block == block)?;
        self.entries.remove(idx)
    }

    /// Structural invariants every reachable file state must satisfy:
    /// occupancy within capacity, no duplicate blocks, and no entry that
    /// is simultaneously a demand wait and a prefetch fill. Returns the
    /// first violation as a message.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.entries.len() > self.capacity {
            return Err(format!(
                "mshr: occupancy {} exceeds capacity {}",
                self.entries.len(),
                self.capacity
            ));
        }
        if self.peak_occupancy > self.capacity {
            return Err(format!(
                "mshr: peak occupancy {} exceeds capacity {}",
                self.peak_occupancy, self.capacity
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if self.entries.iter().skip(i + 1).any(|o| o.block == e.block) {
                return Err(format!("mshr: duplicate entry for block {:#x}", e.block.0));
            }
            if e.demand && e.prefetch_fill {
                return Err(format!(
                    "mshr: block {:#x} is both a demand wait and a prefetch fill",
                    e.block.0
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_complete() {
        let mut m = MshrFile::new(2);
        assert_eq!(
            m.allocate_or_merge(BlockAddr(1), true, Some(7), 0, false),
            MshrOutcome::Allocated
        );
        assert!(m.contains(BlockAddr(1)));
        let e = m.complete(BlockAddr(1)).unwrap();
        assert_eq!(e.waiters, vec![7]);
        assert!(e.demand);
        assert!(!e.prefetch_fill);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn merge_attaches_waiters() {
        let mut m = MshrFile::new(2);
        m.allocate_or_merge(BlockAddr(1), true, Some(1), 0, false);
        assert_eq!(
            m.allocate_or_merge(BlockAddr(1), true, Some(2), 0, false),
            MshrOutcome::Merged
        );
        let e = m.complete(BlockAddr(1)).unwrap();
        assert_eq!(e.waiters, vec![1, 2]);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn full_file_rejects() {
        let mut m = MshrFile::new(1);
        m.allocate_or_merge(BlockAddr(1), true, None, 0, false);
        assert_eq!(
            m.allocate_or_merge(BlockAddr(2), true, None, 0, false),
            MshrOutcome::Full
        );
        // But merges into the existing entry still succeed.
        assert_eq!(
            m.allocate_or_merge(BlockAddr(1), false, None, 0, false),
            MshrOutcome::Merged
        );
    }

    #[test]
    fn demand_merge_upgrades_prefetch_and_counts_late() {
        let mut m = MshrFile::new(2);
        m.allocate_or_merge(BlockAddr(3), false, None, 1, false);
        assert!(m.get(BlockAddr(3)).unwrap().prefetch_fill);
        m.allocate_or_merge(BlockAddr(3), true, Some(9), 0, false);
        let e = m.get(BlockAddr(3)).unwrap();
        assert!(e.demand);
        assert!(!e.prefetch_fill, "merged demand clears prefetch-fill status");
        assert_eq!(e.pointer_level, 1, "pointer level survives the merge");
        assert_eq!(m.late_prefetch_merges(), 1);
    }

    #[test]
    fn pointer_level_takes_max() {
        let mut m = MshrFile::new(2);
        m.allocate_or_merge(BlockAddr(3), false, None, 2, false);
        m.allocate_or_merge(BlockAddr(3), false, None, 6, false);
        assert_eq!(m.get(BlockAddr(3)).unwrap().pointer_level, 6);
    }

    #[test]
    fn dirty_on_fill_is_sticky() {
        let mut m = MshrFile::new(2);
        m.allocate_or_merge(BlockAddr(3), true, None, 0, false);
        m.allocate_or_merge(BlockAddr(3), true, None, 0, true);
        assert!(m.get(BlockAddr(3)).unwrap().dirty_on_fill);
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut m = MshrFile::new(4);
        for i in 0..3 {
            m.allocate_or_merge(BlockAddr(i), true, None, 0, false);
        }
        m.complete(BlockAddr(0));
        m.complete(BlockAddr(1));
        assert_eq!(m.peak_occupancy(), 3);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn has_demand_tracks_demand_entries() {
        let mut m = MshrFile::new(4);
        assert!(!m.has_demand());
        m.allocate_or_merge(BlockAddr(1), false, None, 1, false);
        assert!(!m.has_demand(), "prefetch-only entries are not demand");
        m.allocate_or_merge(BlockAddr(2), true, None, 0, false);
        assert!(m.has_demand());
        m.complete(BlockAddr(2));
        assert!(!m.has_demand());
    }

    #[test]
    fn fill_time_tracking() {
        let mut m = MshrFile::new(2);
        m.allocate_or_merge(BlockAddr(1), true, None, 0, false);
        assert_eq!(m.fill_time(BlockAddr(1)), None, "unset until scheduled");
        m.set_fill_time(BlockAddr(1), 500);
        assert_eq!(m.fill_time(BlockAddr(1)), Some(500));
        m.allocate_or_merge(BlockAddr(2), false, None, 0, false);
        m.set_fill_time(BlockAddr(2), 300);
        assert_eq!(m.earliest_fill_time(), Some(300));
        m.set_fill_time(BlockAddr(9), 100); // unknown block: no-op
        assert_eq!(m.fill_time(BlockAddr(9)), None);
        assert_eq!(m.earliest_fill_time(), Some(300));
        m.complete(BlockAddr(2));
        assert_eq!(m.earliest_fill_time(), Some(500));
    }

    #[test]
    fn complete_unknown_block_is_none() {
        let mut m = MshrFile::new(1);
        assert!(m.complete(BlockAddr(9)).is_none());
    }

    #[test]
    fn capacity_squeeze_blocks_new_allocations_only() {
        let mut m = MshrFile::new(4);
        for i in 0..3 {
            m.allocate_or_merge(BlockAddr(i), true, None, 0, false);
        }
        m.set_capacity_squeeze(2);
        assert_eq!(m.effective_capacity(), 2);
        assert!(m.is_full(), "occupancy 3 above squeezed capacity 2");
        assert_eq!(
            m.allocate_or_merge(BlockAddr(9), true, None, 0, false),
            MshrOutcome::Full
        );
        // Merges into live entries still work, and the invariants hold
        // with occupancy above the squeezed (but not nominal) capacity.
        assert_eq!(
            m.allocate_or_merge(BlockAddr(0), true, None, 0, false),
            MshrOutcome::Merged
        );
        m.check_invariants().unwrap();
        m.complete(BlockAddr(0));
        m.complete(BlockAddr(1));
        assert!(!m.is_full(), "drained below squeezed capacity");
        // A squeeze past the whole file still leaves one register.
        m.set_capacity_squeeze(100);
        assert_eq!(m.effective_capacity(), 1);
        m.set_capacity_squeeze(0);
        assert_eq!(m.effective_capacity(), 4);
    }
}

//! Set-associative cache with prefetch-aware replacement.
//!
//! SRP/GRP control cache pollution by "placing prefetched data in the
//! lowest priority position of the replacement scheme. The controller puts
//! prefetched data in the LRU position of the pertinent cache set, and
//! moves a block to the MRU position only if it is referenced explicitly
//! by the CPU" (paper §3.1). [`Cache::fill`] therefore takes an
//! [`InsertPriority`], and the cache tracks a per-line prefetch bit so the
//! harness can compute prefetch *accuracy* (fraction of prefetched lines
//! referenced before eviction — Table 5).

use crate::addr::BlockAddr;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be `ways * sets * 64`.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// 64 KB 2-way: the paper's split L1 configuration.
    pub fn l1_spec() -> Self {
        Self {
            size_bytes: 64 * 1024,
            ways: 2,
        }
    }

    /// 1 MB 4-way: the paper's unified L2 configuration.
    pub fn l2_spec() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.size_bytes / crate::addr::BLOCK_BYTES) as usize / self.ways
    }
}

/// Where a filled block lands in the recency stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPriority {
    /// Most-recently-used: ordinary demand fills.
    Mru,
    /// Least-recently-used: prefetch fills under SRP/GRP, so a useless
    /// prefetch can displace at most one `n`-th of the useful data in an
    /// `n`-way cache.
    Lru,
}

/// Outcome of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The block was present.
    Hit,
    /// The block was absent; the caller must fetch and [`Cache::fill`] it.
    Miss,
}

/// Detailed outcome of a demand lookup, for observers that need to see
/// first-touches of prefetched lines (the `useful_prefetches` increment)
/// as they happen rather than in the aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the lookup hit.
    pub hit: bool,
    /// True when this access was the first demand touch of a line that
    /// was brought in by a prefetch (`useful_prefetches` was bumped).
    pub first_prefetch_use: bool,
}

/// Detailed outcome of a fill, for observers: the eviction (if any) plus
/// whether a demand fill merged into an already-present prefetched line
/// (which also bumps `useful_prefetches`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// The evicted block, if the fill displaced a valid line.
    pub victim: Option<Victim>,
    /// True when a demand fill found the block already present and
    /// marked prefetched (the prefetch won the race and was useful).
    pub merged_useful: bool,
}

/// A block evicted by [`Cache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted block.
    pub block: BlockAddr,
    /// True when the block was dirty and must be written back.
    pub dirty: bool,
    /// True when the block was brought in by a prefetch and never
    /// referenced by the CPU — a wasted prefetch.
    pub was_unused_prefetch: bool,
}

/// Running counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups (loads + stores).
    pub demand_accesses: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Demand misses that hit a line still in flight is tracked by MSHRs,
    /// not here; this counts pure tag-array misses.
    pub prefetch_fills: u64,
    /// Demand fills (miss completions).
    pub demand_fills: u64,
    /// First demand touch of a prefetched line (prefetch was useful).
    pub useful_prefetches: u64,
    /// Prefetched lines evicted untouched (prefetch was useless).
    pub useless_prefetches: u64,
    /// Dirty evictions (writeback traffic).
    pub writebacks: u64,
    /// Demand hits on a line that was prefetched *late* is accounted by the
    /// MSHR layer; this struct is the tag-array view.
    pub invalidations: u64,
}

impl CacheStats {
    /// Demand miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Prefetch accuracy in `[0, 1]`: useful / (useful + useless). Only
    /// meaningful once lines have been evicted or the run has ended;
    /// the harness adds still-resident-and-touched lines at drain time.
    pub fn prefetch_accuracy(&self) -> f64 {
        let total = self.useful_prefetches + self.useless_prefetches;
        if total == 0 {
            0.0
        } else {
            self.useful_prefetches as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    prefetched: false,
};

/// A set-associative, write-back, write-allocate cache with true-LRU
/// replacement and prefetch-aware insertion.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    // Per set: `ways` lines ordered MRU (index 0) → LRU (index ways-1).
    lines: Vec<Line>,
    ways: usize,
    // Precomputed set mask / tag shift: `contains` runs once per candidate
    // bit in the region engine's scan, so the lookup math stays flat.
    set_mask: usize,
    tag_shift: u32,
    stats: CacheStats,
    // Test-only fault injection: when set, fills evict the MRU way
    // instead of the LRU way. Exists so the differential oracle gate can
    // prove it detects replacement-policy bugs; never set in production.
    fault_evict_mru: bool,
}

impl Cache {
    /// Builds a cache from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a whole power-of-two
    /// number of sets.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets > 0 && sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0);
        Self {
            cfg,
            lines: vec![INVALID; sets * cfg.ways],
            ways: cfg.ways,
            set_mask: sets - 1,
            tag_shift: sets.trailing_zeros(),
            stats: CacheStats::default(),
            fault_evict_mru: false,
        }
    }

    #[doc(hidden)]
    pub fn set_fault_evict_mru(&mut self, on: bool) {
        self.fault_evict_mru = on;
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Set index of the given block under this cache's geometry — the
    /// projection the packed tier's pre-analysis pass precomputes.
    #[inline]
    pub fn set_of(&self, b: BlockAddr) -> usize {
        (b.0 as usize) & self.set_mask
    }

    /// Tag of the given block under this cache's geometry.
    #[inline]
    pub fn tag_of(&self, b: BlockAddr) -> u64 {
        b.0 >> self.tag_shift
    }

    #[inline]
    fn set_slice(&self, set: usize) -> &[Line] {
        &self.lines[set * self.ways..(set + 1) * self.ways]
    }

    fn block_from(&self, set: usize, tag: u64) -> BlockAddr {
        BlockAddr((tag << self.tag_shift) | set as u64)
    }

    /// Non-modifying presence test: does not update recency or counters.
    /// This is what the SRP engine uses when initializing a region's
    /// prefetch bit vector ("the blocks not already present in the L2
    /// cache", §3.1).
    pub fn contains(&self, b: BlockAddr) -> bool {
        let set = self.set_of(b);
        let tag = self.tag_of(b);
        self.set_slice(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Demand access (load or store). On a hit the line is promoted to MRU
    /// and, for a write, marked dirty. The caller handles misses by fetching
    /// the block and calling [`Cache::fill`].
    #[inline]
    pub fn access(&mut self, b: BlockAddr, write: bool) -> LookupResult {
        if self.access_ext(b, write).hit {
            LookupResult::Hit
        } else {
            LookupResult::Miss
        }
    }

    /// [`Cache::access`] with the observer-layer detail attached.
    pub fn access_ext(&mut self, b: BlockAddr, write: bool) -> AccessOutcome {
        self.stats.demand_accesses += 1;
        let set = self.set_of(b);
        let tag = self.tag_of(b);
        let ways = self.ways;
        let lines = &mut self.lines[set * ways..(set + 1) * ways];
        let hit_way = lines.iter().position(|l| l.valid && l.tag == tag);
        match hit_way {
            Some(w) => {
                let first_prefetch_use = lines[w].prefetched;
                if first_prefetch_use {
                    lines[w].prefetched = false;
                    self.stats.useful_prefetches += 1;
                }
                if write {
                    lines[w].dirty = true;
                }
                // Promote to MRU: rotate [0..=w] right by one.
                lines[..=w].rotate_right(1);
                AccessOutcome {
                    hit: true,
                    first_prefetch_use,
                }
            }
            None => {
                self.stats.demand_misses += 1;
                AccessOutcome {
                    hit: false,
                    first_prefetch_use: false,
                }
            }
        }
    }

    /// Inserts `b`, evicting the LRU line if the set is full.
    ///
    /// `is_prefetch` marks the line for accuracy accounting; `prio` chooses
    /// the recency position ([`InsertPriority::Lru`] for SRP/GRP prefetch
    /// fills). `dirty` pre-dirties the line (used when a store triggered the
    /// fill, i.e. write-allocate). Filling a block already present updates
    /// its flags without duplicating it.
    #[inline]
    pub fn fill(
        &mut self,
        b: BlockAddr,
        prio: InsertPriority,
        is_prefetch: bool,
        dirty: bool,
    ) -> Option<Victim> {
        self.fill_ext(b, prio, is_prefetch, dirty).victim
    }

    /// [`Cache::fill`] with the observer-layer detail attached.
    pub fn fill_ext(
        &mut self,
        b: BlockAddr,
        prio: InsertPriority,
        is_prefetch: bool,
        dirty: bool,
    ) -> FillOutcome {
        let set = self.set_of(b);
        let tag = self.tag_of(b);
        if is_prefetch {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.demand_fills += 1;
        }
        let ways = self.ways;
        let lines = &mut self.lines[set * ways..(set + 1) * ways];

        if let Some(w) = lines.iter().position(|l| l.valid && l.tag == tag) {
            // Already present (e.g. a prefetch raced a demand fill): merge.
            lines[w].dirty |= dirty;
            let merged_useful = !is_prefetch && lines[w].prefetched;
            if merged_useful {
                lines[w].prefetched = false;
                self.stats.useful_prefetches += 1;
            }
            if matches!(prio, InsertPriority::Mru) {
                lines[..=w].rotate_right(1);
            }
            return FillOutcome {
                victim: None,
                merged_useful,
            };
        }

        // Choose victim: an invalid way if any, else the LRU way.
        let victim_way = lines
            .iter()
            .position(|l| !l.valid)
            .unwrap_or(if self.fault_evict_mru { 0 } else { ways - 1 });
        let victim_line = lines[victim_way];
        let victim = if victim_line.valid {
            if victim_line.prefetched {
                self.stats.useless_prefetches += 1;
            }
            if victim_line.dirty {
                self.stats.writebacks += 1;
            }
            Some(Victim {
                block: self.block_from(set, victim_line.tag),
                dirty: victim_line.dirty,
                was_unused_prefetch: victim_line.prefetched,
            })
        } else {
            None
        };

        let lines = &mut self.lines[set * ways..(set + 1) * ways];
        lines[victim_way] = Line {
            tag,
            valid: true,
            dirty,
            prefetched: is_prefetch,
        };
        match prio {
            InsertPriority::Mru => lines[..=victim_way].rotate_right(1),
            InsertPriority::Lru => lines[victim_way..].rotate_left(1),
        }
        FillOutcome {
            victim,
            merged_useful: false,
        }
    }

    /// Marks `b` dirty if present (used when an upper-level cache writes
    /// back into this one), without touching recency or demand counters.
    /// Returns true when the block was present.
    pub fn set_dirty(&mut self, b: BlockAddr) -> bool {
        let set = self.set_of(b);
        let tag = self.tag_of(b);
        let ways = self.ways;
        let lines = &mut self.lines[set * ways..(set + 1) * ways];
        match lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            Some(l) => {
                l.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Removes `b` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, b: BlockAddr) -> Option<bool> {
        let set = self.set_of(b);
        let tag = self.tag_of(b);
        let ways = self.ways;
        let lines = &mut self.lines[set * ways..(set + 1) * ways];
        let w = lines.iter().position(|l| l.valid && l.tag == tag)?;
        let dirty = lines[w].dirty;
        lines[w] = INVALID;
        // Compact invalid entries toward the LRU end.
        lines[w..].rotate_left(1);
        self.stats.invalidations += 1;
        Some(dirty)
    }

    /// Number of valid lines currently marked prefetched-and-untouched.
    /// The harness folds these into the accuracy denominator at run end.
    pub fn resident_unused_prefetches(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid && l.prefetched).count() as u64
    }

    /// Number of valid lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// All resident blocks with their dirty bits, sorted by block address.
    /// The differential oracle compares this against the reference
    /// cache's final contents.
    pub fn resident_blocks(&self) -> Vec<(BlockAddr, bool)> {
        let mut v: Vec<(BlockAddr, bool)> = (0..=self.set_mask)
            .flat_map(|set| {
                self.set_slice(set)
                    .iter()
                    .filter(|l| l.valid)
                    .map(move |l| (self.block_from(set, l.tag), l.dirty))
                    .collect::<Vec<_>>()
            })
            .collect();
        v.sort_by_key(|(b, _)| b.0);
        v
    }

    /// Structural well-formedness: no set may hold two valid lines with
    /// the same tag, and the counter identities that hold by construction
    /// must still hold. Returns the first violation as a message.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for set in 0..=self.set_mask {
            let lines = self.set_slice(set);
            for (i, a) in lines.iter().enumerate() {
                if !a.valid {
                    continue;
                }
                if lines[i + 1..].iter().any(|b| b.valid && b.tag == a.tag) {
                    return Err(format!(
                        "cache set {set}: duplicate valid tag {:#x}",
                        a.tag
                    ));
                }
            }
        }
        let s = &self.stats;
        if s.demand_misses > s.demand_accesses {
            return Err(format!(
                "cache stats: misses {} exceed accesses {}",
                s.demand_misses, s.demand_accesses
            ));
        }
        let classified = s.useful_prefetches + s.useless_prefetches + self.resident_unused_prefetches();
        if classified > s.prefetch_fills {
            return Err(format!(
                "cache stats: classified prefetches {} exceed prefetch fills {}",
                classified, s.prefetch_fills
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
        })
    }

    #[test]
    fn spec_configs_have_expected_geometry() {
        assert_eq!(CacheConfig::l1_spec().sets(), 512);
        assert_eq!(CacheConfig::l2_spec().sets(), 4096);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let b = BlockAddr(0x40);
        assert_eq!(c.access(b, false), LookupResult::Miss);
        assert!(c.fill(b, InsertPriority::Mru, false, false).is_none());
        assert_eq!(c.access(b, false), LookupResult::Hit);
        assert!(c.contains(b));
        assert_eq!(c.stats().demand_misses, 1);
        assert_eq!(c.stats().demand_accesses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 blocks: multiples of 4 in a 4-set cache.
        let b0 = BlockAddr(0);
        let b1 = BlockAddr(4);
        let b2 = BlockAddr(8);
        c.fill(b0, InsertPriority::Mru, false, false);
        c.fill(b1, InsertPriority::Mru, false, false);
        // b0 is LRU; touching it promotes it.
        assert_eq!(c.access(b0, false), LookupResult::Hit);
        let v = c.fill(b2, InsertPriority::Mru, false, false).expect("eviction");
        assert_eq!(v.block, b1);
        assert!(c.contains(b0));
        assert!(!c.contains(b1));
    }

    #[test]
    fn lru_insertion_makes_prefetch_first_victim() {
        let mut c = tiny();
        let demand = BlockAddr(0);
        let pf = BlockAddr(4);
        let new = BlockAddr(8);
        c.fill(demand, InsertPriority::Mru, false, false);
        c.fill(pf, InsertPriority::Lru, true, false);
        let v = c.fill(new, InsertPriority::Mru, false, false).expect("evict");
        assert_eq!(v.block, pf, "LRU-inserted prefetch evicted before demand line");
        assert!(v.was_unused_prefetch);
        assert_eq!(c.stats().useless_prefetches, 1);
    }

    #[test]
    fn demand_touch_promotes_prefetched_line_and_counts_useful() {
        let mut c = tiny();
        let pf = BlockAddr(4);
        c.fill(pf, InsertPriority::Lru, true, false);
        assert_eq!(c.access(pf, false), LookupResult::Hit);
        assert_eq!(c.stats().useful_prefetches, 1);
        // The line now behaves as a demand line: when it is eventually
        // evicted it no longer counts as an unused prefetch.
        c.fill(BlockAddr(0), InsertPriority::Mru, false, false); // pf becomes LRU
        let v = c.fill(BlockAddr(8), InsertPriority::Mru, false, false).unwrap();
        assert_eq!(v.block, pf);
        assert!(!v.was_unused_prefetch);
        assert_eq!(c.stats().useless_prefetches, 0);
    }

    #[test]
    fn writes_dirty_lines_and_evictions_writeback() {
        let mut c = tiny();
        let b = BlockAddr(0);
        c.fill(b, InsertPriority::Mru, false, false);
        c.access(b, true); // dirties b
        c.fill(BlockAddr(4), InsertPriority::Mru, false, false); // b becomes LRU
        let v = c.fill(BlockAddr(8), InsertPriority::Mru, false, false).unwrap();
        assert_eq!(v.block, b);
        assert!(v.dirty, "store-touched line writes back on eviction");
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = tiny();
        let b = BlockAddr(0);
        c.fill(b, InsertPriority::Mru, false, true); // write-allocate fill
        c.fill(BlockAddr(4), InsertPriority::Mru, false, false);
        let v = c.fill(BlockAddr(8), InsertPriority::Mru, false, false).unwrap();
        assert_eq!(v.block, b);
        assert!(v.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn duplicate_fill_merges_instead_of_duplicating() {
        let mut c = tiny();
        let b = BlockAddr(4);
        c.fill(b, InsertPriority::Lru, true, false);
        c.fill(b, InsertPriority::Mru, false, false); // demand fill races prefetch
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.stats().useful_prefetches, 1);
        assert_eq!(c.resident_unused_prefetches(), 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        let b = BlockAddr(4);
        c.fill(b, InsertPriority::Mru, false, true);
        assert_eq!(c.invalidate(b), Some(true));
        assert!(!c.contains(b));
        assert_eq!(c.invalidate(b), None);
    }

    #[test]
    fn contains_does_not_touch_stats_or_recency() {
        let mut c = tiny();
        let b0 = BlockAddr(0);
        let b1 = BlockAddr(4);
        c.fill(b0, InsertPriority::Mru, false, false);
        c.fill(b1, InsertPriority::Mru, false, false);
        let before = *c.stats();
        assert!(c.contains(b0));
        assert_eq!(*c.stats(), before);
        // b0 is still LRU despite the probe.
        let v = c.fill(BlockAddr(8), InsertPriority::Mru, false, false).unwrap();
        assert_eq!(v.block, b0);
    }

    #[test]
    fn set_dirty_marks_without_stats() {
        let mut c = tiny();
        let b = BlockAddr(4);
        assert!(!c.set_dirty(b));
        c.fill(b, InsertPriority::Mru, false, false);
        let before = *c.stats();
        assert!(c.set_dirty(b));
        assert_eq!(*c.stats(), before);
        c.fill(BlockAddr(0), InsertPriority::Mru, false, false);
        let v = c.fill(BlockAddr(8), InsertPriority::Mru, false, false).unwrap();
        assert_eq!(v.block, b);
        assert!(v.dirty);
    }

    #[test]
    fn miss_ratio_and_accuracy_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
        s.demand_accesses = 10;
        s.demand_misses = 4;
        s.useful_prefetches = 3;
        s.useless_prefetches = 1;
        assert!((s.miss_ratio() - 0.4).abs() < 1e-12);
        assert!((s.prefetch_accuracy() - 0.75).abs() < 1e-12);
    }
}

//! Strongly-typed addresses at byte, cache-block, and region granularity.
//!
//! The GRP paper uses 64-byte cache blocks and 4 KB prefetch regions
//! throughout (§3.1: "we use a base region size of 4 KB and a cache block
//! size of 64 bytes, resulting in a 64-bit vector and a 6-bit index field").
//! These constants are fixed here; cache geometry (size/ways) stays
//! configurable in [`crate::CacheConfig`].

use std::fmt;

/// log2 of the cache-block size in bytes.
pub const BLOCK_SHIFT: u32 = 6;
/// Cache-block size in bytes (64 B, as in the paper).
pub const BLOCK_BYTES: u64 = 1 << BLOCK_SHIFT;
/// log2 of the prefetch-region size in bytes.
pub const REGION_SHIFT: u32 = 12;
/// Prefetch-region size in bytes (4 KB, as in the paper).
pub const REGION_BYTES: u64 = 1 << REGION_SHIFT;
/// Number of cache blocks per prefetch region (64 → a 64-bit vector).
pub const REGION_BLOCKS: usize = (REGION_BYTES / BLOCK_BYTES) as usize;

/// A byte-granularity physical address.
///
/// The simulator uses a flat physical address space; virtual-to-physical
/// translation in the paper's engine is the identity here (the kernels run
/// in a single address space), which preserves all prefetch behaviour
/// because region alignment is identical in both spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache block containing this byte.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// The 4 KB prefetch region containing this byte.
    #[inline]
    pub fn region(self) -> RegionAddr {
        RegionAddr(self.0 >> REGION_SHIFT)
    }

    /// Byte offset within the containing cache block.
    #[inline]
    pub fn block_offset(self) -> u64 {
        self.0 & (BLOCK_BYTES - 1)
    }

    /// Returns the address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: i64) -> Addr {
        Addr(self.0.wrapping_add(bytes as u64))
    }

    /// True when the address is aligned to `align` bytes (`align` must be a
    /// power of two).
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-block number (byte address shifted right by [`BLOCK_SHIFT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Byte address of the first byte of this block.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// The region containing this block.
    #[inline]
    pub fn region(self) -> RegionAddr {
        RegionAddr(self.0 >> (REGION_SHIFT - BLOCK_SHIFT))
    }

    /// Index of this block within its 4 KB region (0..64).
    #[inline]
    pub fn index_in_region(self) -> usize {
        (self.0 as usize) & (REGION_BLOCKS - 1)
    }

    /// The block `n` blocks after this one.
    #[inline]
    pub fn offset(self, n: i64) -> BlockAddr {
        BlockAddr(self.0.wrapping_add(n as u64))
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{:#x}", self.0)
    }
}

/// A 4 KB prefetch-region number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionAddr(pub u64);

impl RegionAddr {
    /// Byte address of the first byte of the region.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << REGION_SHIFT)
    }

    /// The `i`-th block of this region.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= REGION_BLOCKS`.
    #[inline]
    pub fn block(self, i: usize) -> BlockAddr {
        debug_assert!(i < REGION_BLOCKS);
        BlockAddr((self.0 << (REGION_SHIFT - BLOCK_SHIFT)) | i as u64)
    }
}

impl fmt::Display for RegionAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rgn{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_region_extraction() {
        let a = Addr(0x1_2345);
        assert_eq!(a.block(), BlockAddr(0x1_2345 >> 6));
        assert_eq!(a.region(), RegionAddr(0x12));
        assert_eq!(a.block_offset(), 0x5);
    }

    #[test]
    fn region_has_64_blocks() {
        assert_eq!(REGION_BLOCKS, 64);
        let r = RegionAddr(3);
        assert_eq!(r.block(0).base(), Addr(3 * REGION_BYTES));
        assert_eq!(r.block(63).base(), Addr(3 * REGION_BYTES + 63 * BLOCK_BYTES));
    }

    #[test]
    fn block_index_in_region_round_trips() {
        for i in 0..REGION_BLOCKS {
            let b = RegionAddr(7).block(i);
            assert_eq!(b.index_in_region(), i);
            assert_eq!(b.region(), RegionAddr(7));
        }
    }

    #[test]
    fn block_base_is_aligned() {
        let b = Addr(0xfeed_beef).block();
        assert!(b.base().is_aligned(BLOCK_BYTES));
        assert_eq!(b.base().block(), b);
    }

    #[test]
    fn addr_offset_wraps_like_pointer_arithmetic() {
        let a = Addr(100);
        assert_eq!(a.offset(-36), Addr(64));
        assert_eq!(a.offset(28), Addr(128));
    }

    #[test]
    fn block_offset_navigation() {
        let b = BlockAddr(10);
        assert_eq!(b.offset(1), BlockAddr(11));
        assert_eq!(b.offset(-10), BlockAddr(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr(0x40).to_string(), "0x40");
        assert_eq!(BlockAddr(1).to_string(), "blk0x1");
        assert_eq!(RegionAddr(2).to_string(), "rgn0x2");
        assert_eq!(format!("{:x}", Addr(0xff)), "ff");
    }
}

//! Memory-system substrate for the GRP (Guided Region Prefetching) simulator.
//!
//! This crate provides the building blocks the ISCA 2003 GRP paper's
//! evaluation platform was made of:
//!
//! * [`Addr`]/[`BlockAddr`]/[`RegionAddr`] — strongly-typed physical
//!   addresses at byte, cache-block (64 B) and prefetch-region (4 KB)
//!   granularity.
//! * [`Memory`] — a sparse *functional* memory holding real data values.
//!   GRP's pointer-scan prefetcher inspects the contents of fetched cache
//!   blocks, so the simulator must model values, not just addresses.
//! * [`HeapAllocator`] — a bump allocator defining the legitimate heap
//!   range used by the pointer base-and-bounds test (paper §3.2).
//! * [`Cache`] — a set-associative cache with the low-priority (LRU-way)
//!   insertion policy for prefetches that SRP/GRP rely on (paper §3.1).
//! * [`MshrFile`] — miss status holding registers bounding outstanding
//!   misses per cache.
//! * [`Dram`] — a multi-channel, banked DRAM model with open-page row
//!   buffers and idle-channel detection for the prefetch access
//!   prioritizer.
//! * [`TrafficStats`] — memory-traffic accounting used by the paper's
//!   Figure 12 and Table 5.
//!
//! # Example
//!
//! ```
//! use grp_mem::{Memory, HeapAllocator, Addr};
//!
//! let mut mem = Memory::new();
//! let mut heap = HeapAllocator::new(Addr(0x1000_0000));
//! let a = heap.alloc(64, 8);
//! mem.write_u64(a, 0xdead_beef);
//! assert_eq!(mem.read_u64(a), 0xdead_beef);
//! assert!(heap.range().contains(a));
//! ```

#![deny(missing_docs)]

pub mod addr;
pub mod alloc;
pub mod cache;
pub mod dram;
pub mod fasthash;
pub mod memory;
pub mod mshr;
pub mod oracle;
pub mod stats;

pub use addr::{
    Addr, BlockAddr, RegionAddr, BLOCK_BYTES, BLOCK_SHIFT, REGION_BLOCKS, REGION_BYTES,
    REGION_SHIFT,
};
pub use alloc::{HeapAllocator, HeapRange};
pub use cache::{
    AccessOutcome, Cache, CacheConfig, CacheStats, FillOutcome, InsertPriority, LookupResult,
    Victim,
};
pub use dram::{Dram, DramConfig, DramRequest, DramStats, RequestKind};
pub use fasthash::{FastHasher, FastMap, FastSet};
pub use memory::{Memory, PAGE_BYTES};
pub use mshr::{MshrEntry, MshrFile, MshrOutcome};
pub use oracle::{OracleCache, OracleDram, OracleMshr};
pub use stats::TrafficStats;

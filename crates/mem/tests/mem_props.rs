//! Property tests for the memory substrate: cache replacement, DRAM
//! timing, allocator, and functional-memory invariants.

use grp_mem::{
    Addr, BlockAddr, Cache, CacheConfig, Dram, DramConfig, HeapAllocator, InsertPriority,
    LookupResult, Memory, RequestKind,
};
use grp_testkit::proptest;
use grp_testkit::proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A block accessed immediately after a fill always hits (no
    /// spontaneous eviction), and the most recently touched block of a
    /// set is never the eviction victim.
    #[test]
    fn mru_block_survives(blocks in proptest::collection::vec(0u64..256, 2..200)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 4 * 1024, ways: 4 });
        let mut last: Option<BlockAddr> = None;
        for b in blocks {
            let blk = BlockAddr(b);
            if c.access(blk, false) == LookupResult::Miss {
                let v = c.fill(blk, InsertPriority::Mru, false, false);
                if let (Some(v), Some(prev)) = (v, last) {
                    // The immediately-previous touch is MRU in its set; if
                    // the victim came from the same set it cannot be it.
                    if prev != blk {
                        prop_assert_ne!(v.block, prev, "evicted the MRU line");
                    }
                }
            }
            prop_assert!(c.contains(blk));
            last = Some(blk);
        }
    }

    /// DRAM completions are causal and per-channel monotone for demands.
    #[test]
    fn dram_completions_monotone(reqs in proptest::collection::vec((0u64..4096, any::<bool>()), 1..200)) {
        let mut d = Dram::new(DramConfig::default());
        let mut now = 0u64;
        let mut last_demand_per_channel = vec![0u64; 4];
        for (b, is_pf) in reqs {
            let block = BlockAddr(b);
            let kind = if is_pf { RequestKind::Prefetch } else { RequestKind::Demand };
            let r = d.issue(block, kind, now);
            prop_assert!(r.complete_at > now, "completion after issue");
            if kind == RequestKind::Demand {
                let ch = d.channel_of(block);
                prop_assert!(
                    r.complete_at >= last_demand_per_channel[ch],
                    "demands on one channel complete in order"
                );
                last_demand_per_channel[ch] = r.complete_at;
            }
            now += 7; // issue times strictly increase
        }
    }

    /// The demand path is never delayed by more than one preempted
    /// prefetch: a demand issued on an idle-of-demands channel completes
    /// within the uncontended latency plus the preemption penalty.
    #[test]
    fn demand_preemption_bound(pf_blocks in proptest::collection::vec(0u64..64, 0..32)) {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        for b in pf_blocks {
            d.issue(BlockAddr(b), RequestKind::Prefetch, 0);
        }
        let r = d.issue(BlockAddr(1000), RequestKind::Demand, 0);
        let worst_uncontended = cfg.t_overhead + cfg.t_row_hit + cfg.t_row_miss_extra + cfg.t_burst;
        prop_assert!(
            r.complete_at <= worst_uncontended + cfg.t_preempt,
            "demand waited {} > bound {}",
            r.complete_at,
            worst_uncontended + cfg.t_preempt
        );
    }

    /// Allocations never overlap and always respect alignment.
    #[test]
    fn allocations_disjoint(sizes in proptest::collection::vec((1u64..10_000, 0u32..7), 1..64)) {
        let mut h = HeapAllocator::new(Addr(0x1_0000));
        let mut prev_end = 0x1_0000u64;
        for (size, align_log) in sizes {
            let align = 1u64 << align_log;
            let a = h.alloc(size, align);
            prop_assert!(a.is_aligned(align));
            prop_assert!(a.0 >= prev_end, "allocation overlaps the previous one");
            prev_end = a.0 + size;
            prop_assert!(h.range().contains(a));
            prop_assert!(h.range().contains(Addr(a.0 + size - 1)));
        }
    }

    /// Functional memory reads back exactly what was written, at any mix
    /// of sizes and offsets.
    #[test]
    fn memory_read_your_writes(writes in proptest::collection::vec((0u64..1 << 16, any::<u64>(), 0u8..3), 1..128)) {
        let mut m = Memory::new();
        let mut shadow: std::collections::HashMap<u64, u64> = Default::default();
        for (addr, val, size_sel) in &writes {
            // Align per size so entries do not partially overlap in the shadow.
            match size_sel {
                0 => {
                    let a = addr & !7;
                    m.write_u64(Addr(a), *val);
                    shadow.insert(a, *val);
                }
                1 => {
                    let a = (addr & !7) | 0x10_0000;
                    m.write_u32(Addr(a), *val as u32);
                    shadow.insert(a, *val & 0xFFFF_FFFF);
                }
                _ => {
                    let a = (addr & !7) | 0x20_0000;
                    m.write_u8(Addr(a), *val as u8);
                    shadow.insert(a, *val & 0xFF);
                }
            }
        }
        for (a, v) in shadow {
            let read = if a & 0x20_0000 != 0 {
                m.read_u8(Addr(a)) as u64
            } else if a & 0x10_0000 != 0 {
                m.read_u32(Addr(a)) as u64
            } else {
                m.read_u64(Addr(a))
            };
            prop_assert_eq!(read, v);
        }
    }
}
